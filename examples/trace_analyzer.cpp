/**
 * @file
 * End-to-end command-line tool mirroring the paper's workflow:
 * record a trace (here: synthesize one from a Table 2 app profile, or
 * load one from a file), then analyze it offline with AsyncClock or
 * the EventRacer-style baseline and print the race report and
 * resource usage.
 *
 * Usage:
 *   trace_analyzer gen <AppName> <out.trace> [scale] [--binary]
 *   trace_analyzer analyze <in.trace> [--detector=asyncclock|eventracer]
 *                  [--model=looper|async]
 *                  [--window-ms=N] [--chains=fifo|greedy]
 *                  [--no-reclaim] [--all-races]
 *                  [--clock=sparse|cow|tree|hybrid]
 *                  [--streaming] [--shards=N]
 *                  [--progress[=N]] [--trace-out=PATH]
 *                  [--metrics-out=PATH]
 *
 * gen accepts the Table 2 looper app names (workload/workload.hh) and
 * the async task-graph profiles (AsyncTree, AsyncPipeline,
 * AsyncFanOut; workload/async_workload.hh), which produce
 * async-dialect traces.
 *
 * analyze auto-detects text vs binary traces by magic, and picks its
 * causality model from the trace's dialect tag; --model is an
 * assertion (a mismatch is an error), not an override — running the
 * looper rules over a task graph would be meaningless. --streaming
 * feeds the detector from the file without materializing the op
 * vector (O(1) trace memory); --shards=N fans the race checks out to
 * N parallel FastTrack shards.
 *
 * Observability (all off by default, near-zero cost when off):
 * --progress prints a heartbeat line to stderr every N ops (default
 * 100000); --trace-out writes a Chrome trace-event JSON file of the
 * run's phases (load in Perfetto / chrome://tracing); --metrics-out
 * writes the end-of-run metrics snapshot as JSON; --serve=PORT
 * scrapes the live run over HTTP (/metrics in Prometheus text
 * format, /metrics.json, /healthz, /progress); --events-out writes a
 * structured JSONL log of run lifecycle events (checkpoints,
 * degradation-ladder rungs, watchdogs, decode skips);
 * --phase-timing attributes per-op cost to decode / model-apply /
 * clock-join / race-check / GC-sweep phases.
 *
 * Example:
 *   ./build/examples/trace_analyzer gen Firefox /tmp/firefox.trace 0.02
 *   ./build/examples/trace_analyzer analyze /tmp/firefox.trace \
 *       --streaming --shards=4
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/engine.hh"
#include "daemon/daemon.hh"
#include "graph/eventracer.hh"
#include "obs/event_log.hh"
#include "obs/obs.hh"
#include "obs/progress.hh"
#include "obs/telemetry.hh"
#include "predict/predict.hh"
#include "report/checkpoint.hh"
#include "report/export.hh"
#include "report/fasttrack.hh"
#include "report/races.hh"
#include "report/sharded.hh"
#include "support/format.hh"
#include "support/signal.hh"
#include "trace/fault.hh"
#include "trace/trace_io.hh"
#include "verify/verifier.hh"
#include "workload/async_workload.hh"
#include "workload/workload.hh"

using namespace asyncclock;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  trace_analyzer gen <AppName> <out.trace> [scale] [--binary]\n"
        "  trace_analyzer analyze <in.trace> [options]\n"
        "  trace_analyzer daemon [daemon options]   (alias:\n"
        "                   trace_analyzer --daemon=PORT ...)\n"
        "  trace_analyzer feed <in.trace> --port=P --session=ID\n"
        "                   [feed options]\n"
        "gen: AppName is a Table 2 looper profile (e.g. Firefox) or an\n"
        "  async task-graph profile (AsyncTree|AsyncPipeline|\n"
        "  AsyncFanOut); async profiles write async-dialect traces\n"
        "options:\n"
        "  --detector=asyncclock|eventracer   (default asyncclock)\n"
        "  --model=looper|async  causality model; inferred from the\n"
        "                   trace's dialect tag, so this flag only\n"
        "                   asserts the expectation (mismatch = error)\n"
        "  --window-ms=N    time window, 0 = off (default 120000)\n"
        "  --chains=fifo|greedy               (default fifo)\n"
        "  --clock=sparse|cow|tree|hybrid  vector-clock backend\n"
        "                   (default sparse, or $ASYNCCLOCK_CLOCK);\n"
        "                   all backends produce identical reports\n"
        "  --no-reclaim     disable heirless-event reclamation\n"
        "  --all-races      disable the user-induced and\n"
        "                   commutativity filters\n"
        "  --streaming      stream the trace from the file instead\n"
        "                   of materializing the operation vector\n"
        "  --shards=N       check races on N parallel shards\n"
        "  --json           print the report as JSON (materialized\n"
        "                   mode only)\n"
        "  --verify[=N]     replay-verify candidate races (at most N\n"
        "                   classes; default all): flip each class\n"
        "                   representative's order and diff the state\n"
        "  --verify-max-ops=N  skip verification above N trace ops\n"
        "                   (the closure is quadratic; default 50000)\n"
        "  --predict[=N]    infer races the observed schedule hid:\n"
        "                   re-run the clocks under the weakened\n"
        "                   (schedule-independent) ordering, then\n"
        "                   replay-verify every candidate before it\n"
        "                   reaches the report (at most N classes;\n"
        "                   default all); implies --verify\n"
        "  --predict-window=N  per-variable candidate window (default\n"
        "                   64, 0 = unbounded); evictions counted\n"
        "  --predict-max-candidates=N  global candidate cap (default\n"
        "                   256, 0 = unbounded); drops counted\n"
        "  --progress[=N]   heartbeat line on stderr every N ops\n"
        "                   (default 100000)\n"
        "  --trace-out=PATH write Chrome trace-event JSON (Perfetto)\n"
        "  --metrics-out=PATH write end-of-run metrics JSON\n"
        "  --serve=PORT     serve live telemetry on 127.0.0.1:PORT\n"
        "                   (0 = kernel-assigned): /metrics is\n"
        "                   Prometheus text format, plus\n"
        "                   /metrics.json /healthz /progress\n"
        "  --serve-linger-ms=N  keep the telemetry server up N ms\n"
        "                   after the run finishes (default 0)\n"
        "  --events-out=PATH  write structured lifecycle events\n"
        "                   (checkpoints, pressure rungs, watchdogs,\n"
        "                   decode skips) as JSON lines\n"
        "  --phase-timing   attribute per-op cost to decode /\n"
        "                   model-apply / clock-join / race-check /\n"
        "                   gc-sweep phases (table at end of run;\n"
        "                   histograms when metrics are on)\n"
        "robustness:\n"
        "  --max-record-errors=N  skip up to N corrupt records before\n"
        "                   failing (default 0: first error fails)\n"
        "  --mem-budget=N[K|M|G]  degradation ladder budget for\n"
        "                   detector metadata (default: uncapped)\n"
        "  --checkpoint=PATH      checkpoint the run to PATH\n"
        "  --checkpoint-every=N   ops between checkpoints\n"
        "                   (default 1000000)\n"
        "  --resume         resume from --checkpoint PATH\n"
        "  --report-out=PATH      also write the race report to PATH\n"
        "  --watchdog-ms=N  sharded stall watchdog (default 30000,\n"
        "                   0 = off)\n"
        "  --inject=SPEC    deterministic fault injection;\n"
        "                   SPEC is comma-separated key=value:\n"
        "%s"
        "daemon options (always-on multi-session analysis service):\n"
        "  --port=N         listen on 127.0.0.1:N (default 0 =\n"
        "                   kernel-assigned; printed at startup)\n"
        "  --state-dir=PATH session spools/checkpoints/reports\n"
        "                   (default ./asyncclockd-state)\n"
        "  --workers=N      analysis worker threads (default 2)\n"
        "  --http-threads=N HTTP handler threads (default 4)\n"
        "  --max-sessions=N admission cap (default 64)\n"
        "  --mem-budget=N[K|M|G]  global resident-state budget; the\n"
        "                   LRU ladder checkpoints cold sessions to\n"
        "                   disk to stay under it (default: uncapped)\n"
        "  --idle-timeout-ms=N  evict sessions idle this long\n"
        "                   (default 0 = never)\n"
        "  --watchdog-ms=N  poison a session whose pump slice stalls\n"
        "                   this long (default 30000, 0 = off)\n"
        "  --queue-chunks=N per-session ingest queue depth (default 8)\n"
        "  --admission-timeout-ms=N  ingest wait before 429\n"
        "                   (default 250)\n"
        "  --clock=B --window-ms=N --all-races --events-out=PATH\n"
        "                   as for analyze (clock is pinned\n"
        "                   process-wide; mismatched creates get 409)\n"
        "feed options (daemon client; drives one session):\n"
        "  --port=P --session=ID  daemon endpoint + session id\n"
        "  --chunk-bytes=N  ingest chunk size (default 65536)\n"
        "  --report-out=PATH  write the fetched report here\n"
        "  --no-finish      leave the session unfinished (drain tests)\n"
        "  --interleave-file=PATH  bytes for sess-interleave faults\n"
        "  --inject=SPEC    session-level faults (sess-disconnect=N,\n"
        "                   sess-dup=N, sess-interleave=N)\n",
        trace::faultSpecHelp());
    return 2;
}

/** Parse a byte count with an optional K/M/G suffix. */
std::uint64_t
parseBytes(const char *s)
{
    char *end = nullptr;
    std::uint64_t v = std::strtoull(s, &end, 10);
    if (end) {
        if (*end == 'K' || *end == 'k')
            v <<= 10;
        else if (*end == 'M' || *end == 'm')
            v <<= 20;
        else if (*end == 'G' || *end == 'g')
            v <<= 30;
    }
    return v;
}

/** Write @p data to @p path, fatal() on failure. */
void
writeTextFile(const std::string &path, const std::string &data)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        fatal("cannot open " + path + " for writing");
    if (std::fwrite(data.data(), 1, data.size(), f) != data.size() ||
        std::fclose(f) != 0)
        fatal("short write to " + path);
}

int
cmdGen(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    bool binary = false;
    double scale = 0.05;
    bool haveScale = false;
    for (int i = 4; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--binary") {
            binary = true;
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "gen: unknown option '%s'\n",
                         arg.c_str());
            return usage();
        } else {
            char *end = nullptr;
            scale = std::strtod(arg.c_str(), &end);
            if (end == arg.c_str() || *end != '\0' || scale <= 0) {
                std::fprintf(stderr, "gen: bad scale '%s'\n",
                             arg.c_str());
                return usage();
            }
            haveScale = true;
        }
    }
    for (const workload::AsyncProfile &ap :
         workload::asyncProfiles()) {
        if (ap.name != argv[2])
            continue;
        workload::AsyncProfile prof = ap;
        // Async profiles are sized in root tasks: scale multiplies
        // the profile's default (1.0 = as-published), unlike the
        // looper path's absolute event-count scale.
        double s = haveScale ? scale : 1.0;
        prof.rootTasks = std::max(
            1u,
            static_cast<std::uint32_t>(prof.rootTasks * s + 0.5));
        std::printf("generating %s (async dialect, %u root task(s), "
                    "%u executor(s))...\n",
                    prof.name.c_str(), prof.rootTasks,
                    prof.executors);
        workload::GeneratedAsyncApp app =
            workload::generateAsyncApp(prof);
        std::string problem = app.trace.validate(true);
        if (!problem.empty())
            fatal("generated trace invalid: " + problem);
        if (binary)
            trace::saveBinaryTraceFile(app.trace, argv[3]);
        else
            trace::saveTraceFile(app.trace, argv[3]);
        std::printf("wrote %s (%s): %s\n", argv[3],
                    binary ? "binary" : "text",
                    app.trace.stats().summary().c_str());
        return 0;
    }
    // Seeded predictive-tier shapes (DESIGN.md section 16): fixed
    // patterns, so they ignore the scale argument.
    struct NamedPattern
    {
        const char *name;
        trace::Trace (*make)();
    };
    static const NamedPattern kPredictPatterns[] = {
        {"PredictLockShadow", workload::lockShadowedPattern},
        {"PredictQueueSiblings", workload::queueSiblingsPattern},
        {"PredictFifoForced", workload::fifoForcedPattern},
    };
    for (const NamedPattern &pat : kPredictPatterns) {
        if (std::string(pat.name) != argv[2])
            continue;
        std::printf("generating %s (predictive-tier pattern)...\n",
                    pat.name);
        trace::Trace ptr_ = pat.make();
        std::string problem = ptr_.validate(true);
        if (!problem.empty())
            fatal("generated trace invalid: " + problem);
        if (binary)
            trace::saveBinaryTraceFile(ptr_, argv[3]);
        else
            trace::saveTraceFile(ptr_, argv[3]);
        std::printf("wrote %s (%s): %s\n", argv[3],
                    binary ? "binary" : "text",
                    ptr_.stats().summary().c_str());
        return 0;
    }
    workload::AppProfile profile =
        workload::profileByName(argv[2], scale);
    std::printf("generating %s at scale %.3f (~%u looper events)...\n",
                profile.name.c_str(), scale, profile.looperEvents);
    workload::GeneratedApp app = workload::generateApp(profile);
    std::string problem = app.trace.validate(true);
    if (!problem.empty())
        fatal("generated trace invalid: " + problem);
    if (binary)
        trace::saveBinaryTraceFile(app.trace, argv[3]);
    else
        trace::saveTraceFile(app.trace, argv[3]);
    std::printf("wrote %s (%s): %s\n", argv[3],
                binary ? "binary" : "text",
                app.trace.stats().summary().c_str());
    return 0;
}

int
cmdAnalyze(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    std::string detectorName = "asyncclock";
    std::string modelArg;
    core::DetectorConfig cfg;
    report::FilterConfig filters;
    bool json = false;
    bool streaming = false;
    bool resume = false;
    bool verify = false;
    std::uint32_t verifyMaxClasses = 0;
    std::uint32_t verifyMaxOps = 50000;
    bool predict = false;
    std::uint32_t predictMaxClasses = 0;
    std::uint32_t predictWindow = 64;
    std::uint32_t predictMaxCandidates = 256;
    unsigned shards = 0;
    std::uint64_t progressEvery = 0;
    std::uint64_t checkpointEvery = 1000000;
    std::uint64_t watchdogMs = 30000;
    int servePort = -1;  // -1 = off; 0 = kernel-assigned
    std::uint64_t serveLingerMs = 0;
    std::string traceOut;
    std::string metricsOut;
    std::string eventsOut;
    std::string checkpointPath;
    std::string reportOut;
    std::string injectSpec;
    trace::SourceErrorPolicy policy;
    for (int i = 3; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--detector=", 0) == 0) {
            detectorName = arg.substr(11);
        } else if (arg.rfind("--model=", 0) == 0) {
            modelArg = arg.substr(8);
            core::ModelKind ignored;
            if (!core::parseModelName(modelArg, ignored)) {
                std::fprintf(stderr,
                             "--model: unknown model '%s' (want "
                             "looper|async)\n",
                             modelArg.c_str());
                return 2;
            }
        } else if (arg.rfind("--window-ms=", 0) == 0) {
            cfg.windowMs = std::strtoull(arg.c_str() + 12, nullptr, 10);
        } else if (arg == "--chains=greedy") {
            cfg.chainMode = core::ChainMode::Greedy;
        } else if (arg == "--chains=fifo") {
            cfg.chainMode = core::ChainMode::Fifo;
        } else if (arg.rfind("--clock=", 0) == 0) {
            clock::Backend b;
            if (!clock::parseBackend(arg.c_str() + 8, b)) {
                std::fprintf(stderr,
                             "--clock: unknown backend '%s' (want "
                             "%s)\n",
                             arg.c_str() + 8,
                             clock::backendNames());
                return 2;
            }
            clock::setDefaultBackend(b);
            cfg.clockBackend = b;
        } else if (arg == "--no-reclaim") {
            cfg.reclaimHeirless = false;
            cfg.multiPathReduction = false;
        } else if (arg == "--all-races") {
            filters.userInducedOnly = false;
            filters.commutativityFilter = false;
        } else if (arg == "--streaming") {
            streaming = true;
        } else if (arg.rfind("--shards=", 0) == 0) {
            shards = static_cast<unsigned>(
                std::strtoul(arg.c_str() + 9, nullptr, 10));
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--verify") {
            verify = true;
        } else if (arg.rfind("--verify=", 0) == 0) {
            verify = true;
            verifyMaxClasses = static_cast<std::uint32_t>(
                std::strtoul(arg.c_str() + 9, nullptr, 10));
        } else if (arg.rfind("--verify-max-ops=", 0) == 0) {
            verifyMaxOps = static_cast<std::uint32_t>(
                std::strtoul(arg.c_str() + 17, nullptr, 10));
        } else if (arg == "--predict") {
            predict = true;
        } else if (arg.rfind("--predict=", 0) == 0) {
            predict = true;
            predictMaxClasses = static_cast<std::uint32_t>(
                std::strtoul(arg.c_str() + 10, nullptr, 10));
        } else if (arg.rfind("--predict-window=", 0) == 0) {
            predictWindow = static_cast<std::uint32_t>(
                std::strtoul(arg.c_str() + 17, nullptr, 10));
        } else if (arg.rfind("--predict-max-candidates=", 0) == 0) {
            predictMaxCandidates = static_cast<std::uint32_t>(
                std::strtoul(arg.c_str() + 25, nullptr, 10));
        } else if (arg == "--progress") {
            progressEvery = 100000;
        } else if (arg.rfind("--progress=", 0) == 0) {
            progressEvery =
                std::strtoull(arg.c_str() + 11, nullptr, 10);
        } else if (arg.rfind("--trace-out=", 0) == 0) {
            traceOut = arg.substr(12);
        } else if (arg.rfind("--metrics-out=", 0) == 0) {
            metricsOut = arg.substr(14);
        } else if (arg.rfind("--serve=", 0) == 0) {
            servePort = static_cast<int>(
                std::strtol(arg.c_str() + 8, nullptr, 10));
            if (servePort < 0 || servePort > 65535) {
                std::fprintf(stderr, "--serve: bad port '%s'\n",
                             arg.c_str() + 8);
                return 2;
            }
        } else if (arg.rfind("--serve-linger-ms=", 0) == 0) {
            serveLingerMs =
                std::strtoull(arg.c_str() + 18, nullptr, 10);
        } else if (arg.rfind("--events-out=", 0) == 0) {
            eventsOut = arg.substr(13);
        } else if (arg == "--phase-timing") {
            cfg.phaseTiming = true;
        } else if (arg.rfind("--max-record-errors=", 0) == 0) {
            policy.maxRecordErrors =
                std::strtoull(arg.c_str() + 20, nullptr, 10);
        } else if (arg.rfind("--mem-budget=", 0) == 0) {
            cfg.memBudgetBytes = parseBytes(arg.c_str() + 13);
        } else if (arg.rfind("--checkpoint=", 0) == 0) {
            checkpointPath = arg.substr(13);
        } else if (arg.rfind("--checkpoint-every=", 0) == 0) {
            checkpointEvery =
                std::strtoull(arg.c_str() + 19, nullptr, 10);
        } else if (arg == "--resume") {
            resume = true;
        } else if (arg.rfind("--report-out=", 0) == 0) {
            reportOut = arg.substr(13);
        } else if (arg.rfind("--watchdog-ms=", 0) == 0) {
            watchdogMs = std::strtoull(arg.c_str() + 14, nullptr, 10);
        } else if (arg.rfind("--inject=", 0) == 0) {
            injectSpec = arg.substr(9);
        } else {
            std::fprintf(stderr, "analyze: unknown option '%s'\n",
                         arg.c_str());
            return usage();
        }
    }
    if (json && streaming) {
        std::fprintf(stderr,
                     "--json requires materialized mode\n");
        return 2;
    }
    if (predict && !verify) {
        // Prediction without verification would be unsound (a weak-
        // order candidate is only a hypothesis until replay confirms
        // it), so the flag is an implication, not an error.
        std::fprintf(stderr,
                     "--predict implies --verify (predicted "
                     "candidates are always replay-verified); "
                     "enabling\n");
        verify = true;
    }

    trace::FaultConfig faults;
    if (!injectSpec.empty()) {
        Expected<trace::FaultConfig> parsed =
            trace::parseFaultSpec(injectSpec);
        if (!parsed) {
            std::fprintf(stderr, "--inject: %s\n",
                         parsed.status().toString().c_str());
            return 2;
        }
        faults = parsed.value();
        if ((faults.anyByteFaults() || faults.anyOpFaults()) &&
            !streaming) {
            // Byte/op faults wrap the streaming readers; materialized
            // loading would reject the damage before the detector
            // ever saw it.
            std::fprintf(stderr,
                         "--inject implies --streaming; enabling\n");
            streaming = true;
        }
    }
    if (resume && checkpointPath.empty()) {
        std::fprintf(stderr, "--resume requires --checkpoint=PATH\n");
        return 2;
    }
    if (!checkpointPath.empty() && shards > 0) {
        // Structured refusal, not an abort: per-shard checker state
        // interleaves schedule-dependently and cannot be snapshotted
        // into a deterministic resume point.
        std::fprintf(
            stderr, "error: %s\n",
            Status::error(ErrCode::Unsupported,
                          "checkpoint/resume requires the sequential "
                          "checker (drop --shards)")
                .toString()
                .c_str());
        return 1;
    }
    if (!checkpointPath.empty() && detectorName != "asyncclock") {
        std::fprintf(
            stderr, "error: %s\n",
            Status::error(ErrCode::Unsupported,
                          "checkpoint/resume is only supported with "
                          "the asyncclock detector")
                .toString()
                .c_str());
        return 1;
    }

    // Observability: a registry when anything consumes metrics
    // (--metrics-out, --serve, or --events-out, whose warn tap counts
    // into the registry), a tracer iff --trace-out. All must outlive
    // the detector and checker (their snapshot callbacks read into
    // those objects), so they live here and everything below holds
    // nullable pointers.
    obs::MetricsRegistry registry;
    obs::Tracer tracer;
    obs::ObsContext octx;
    if (!metricsOut.empty() || servePort >= 0 || !eventsOut.empty()) {
        octx.metrics = &registry;
        // Fresh per-run clock-substrate numbers (join sizes, copies,
        // intern hits) under "clock.*".
        clock::resetClockStats();
        clock::registerClockStats(registry);
    }
    if (!traceOut.empty())
        octx.tracer = &tracer;
    // Structured event log + warn tap. The tap routes every
    // warn-family call (including rate-limit-suppressed ones) into
    // log.warnings_* counters and, when --events-out is on, into the
    // event log; declared after `events` so it detaches first.
    std::unique_ptr<obs::EventLog> events;
    if (!eventsOut.empty()) {
        events = obs::EventLog::open(eventsOut);
        if (!events)
            fatal("cannot open " + eventsOut + " for writing");
        octx.events = events.get();
    }
    std::unique_ptr<obs::WarnTap> warnTap;
    if (octx.metrics)
        warnTap =
            std::make_unique<obs::WarnTap>(registry, events.get());

    // Checker topology. Three shapes:
    //  - sharded: parallel FastTrack shards (no checkpoint support);
    //  - sequential + --checkpoint: FastTrackChecker behind a
    //    ResumeFilter (the filter counts accesses for snapshots and
    //    discards replayed ones on resume);
    //  - plain sequential: bare FastTrackChecker, zero extra layers on
    //    the clean path.
    std::unique_ptr<report::ShardedChecker> shardedOwned;
    std::unique_ptr<report::FastTrackChecker> ftOwned;
    std::unique_ptr<report::ResumeFilter> filterOwned;
    report::AccessChecker *checker = nullptr;
    report::ShardedChecker *sharded = nullptr;
    report::FastTrackChecker *fasttrack = nullptr;
    report::ResumeFilter *filter = nullptr;
    if (shards > 0) {
        report::ShardedConfig scfg;
        scfg.shards = shards;
        scfg.obs = octx;
        scfg.watchdogMs = watchdogMs;
        scfg.faults.stallShard = faults.stallShard;
        scfg.faults.stallMs = faults.shardStallMs;
        scfg.faults.poisonShard = faults.poisonShard;
        shardedOwned = std::make_unique<report::ShardedChecker>(scfg);
        sharded = shardedOwned.get();
        checker = sharded;
    } else {
        ftOwned = std::make_unique<report::FastTrackChecker>();
        fasttrack = ftOwned.get();
        checker = fasttrack;
    }

    report::CheckpointMeta identity; // trace size + hash
    bool ckptLoaded = false;
    std::uint8_t ckptModelTag = report::kModelTagLooper;
    if (!checkpointPath.empty()) {
        auto id = report::traceIdentity(argv[2]);
        if (!id) {
            std::fprintf(stderr, "error: %s\n",
                         id.status().toString().c_str());
            return 1;
        }
        identity = id.value();
        std::uint64_t skip = 0;
        if (resume) {
            std::ifstream probe(checkpointPath, std::ios::binary);
            if (!probe) {
                std::fprintf(stderr,
                             "no checkpoint at %s; starting fresh\n",
                             checkpointPath.c_str());
            } else {
                probe.close();
                auto loaded = report::loadCheckpoint(checkpointPath,
                                                     *fasttrack);
                if (!loaded) {
                    std::fprintf(stderr, "error: %s\n",
                                 loaded.status().toString().c_str());
                    return 1;
                }
                if (loaded.value().traceBytes != identity.traceBytes ||
                    loaded.value().traceHash != identity.traceHash) {
                    std::fprintf(
                        stderr, "error: %s\n",
                        Status::error(
                            ErrCode::ParseError,
                            "checkpoint was taken against a different "
                            "trace (size/hash mismatch); refusing to "
                            "resume")
                            .toString()
                            .c_str());
                    return 1;
                }
                ckptLoaded = true;
                ckptModelTag = loaded.value().modelTag;
                skip = loaded.value().accessesChecked;
                std::printf("resuming from %s: replaying %llu op(s), "
                            "skipping %llu checked access(es)\n",
                            checkpointPath.c_str(),
                            (unsigned long long)
                                loaded.value().opsProcessed,
                            (unsigned long long)skip);
                if (octx.events)
                    octx.events->log(
                        obs::EventLog::Severity::Info,
                        "checkpoint.resumed",
                        strf("replaying %llu op(s), skipping %llu "
                             "checked access(es)",
                             (unsigned long long)
                                 loaded.value().opsProcessed,
                             (unsigned long long)skip),
                        loaded.value().opsProcessed);
            }
        }
        filterOwned =
            std::make_unique<report::ResumeFilter>(*fasttrack, skip);
        filter = filterOwned.get();
        checker = filter;
    }

    trace::Trace tr;                       // materialized mode only
    trace::OpenedSource opened;            // streaming, no faults
    trace::FaultyOpenedSource faultyOpened; // streaming, with faults
    trace::TraceSource *source = nullptr;  // streaming mode only
    std::unique_ptr<report::Detector> detector;
    core::DetectorEngine *acDetector = nullptr;
    auto binaryE = trace::tryIsBinaryTraceFile(argv[2]);
    if (!binaryE) {
        std::fprintf(stderr, "error: %s\n",
                     binaryE.status().toString().c_str());
        return 1;
    }
    bool binary = binaryE.value();
    if (streaming) {
        if (faults.anyByteFaults() || faults.anyOpFaults()) {
            auto fo =
                trace::openFaultyTraceSource(argv[2], faults, policy);
            if (!fo) {
                std::fprintf(stderr, "error: %s\n",
                             fo.status().toString().c_str());
                return 1;
            }
            faultyOpened = std::move(fo.value());
            source = faultyOpened.source.get();
        } else {
            auto os = trace::tryOpenTraceSource(argv[2], policy);
            if (!os) {
                std::fprintf(stderr, "error: %s\n",
                             os.status().toString().c_str());
                return 1;
            }
            opened = std::move(os.value());
            source = opened.source.get();
        }
        std::printf("streaming %s (%s format)\n", argv[2],
                    binary ? "binary" : "text");
    } else {
        tr = binary ? trace::loadBinaryTraceFile(argv[2])
                    : trace::loadTraceFile(argv[2]);
        std::printf("loaded %s: %s\n", argv[2],
                    tr.stats().summary().c_str());
    }
    // Causality model: the trace's dialect tag is authoritative
    // (headers carry it in both text and binary form, so streaming
    // sources know it before the first op). --model only asserts the
    // caller's expectation — running the looper rules over a task
    // graph (or vice versa) would infer nonsense, so a mismatch is an
    // error, never a silent override.
    const trace::Dialect dialect =
        streaming ? source->meta().dialect() : tr.dialect();
    const core::ModelKind model = core::modelForDialect(dialect);
    if (!modelArg.empty()) {
        core::ModelKind requested = core::ModelKind::Looper;
        core::parseModelName(modelArg, requested);
        if (requested != model) {
            std::fprintf(
                stderr, "error: %s\n",
                Status::error(
                    ErrCode::ParseError,
                    strf("--model=%s does not match the trace's %s "
                         "dialect (which requires the %s model)",
                         modelArg.c_str(), trace::dialectName(dialect),
                         core::modelName(model)))
                    .toString()
                    .c_str());
            return 1;
        }
    }
    const std::uint8_t myModelTag = model == core::ModelKind::Async
                                        ? report::kModelTagAsync
                                        : report::kModelTagLooper;
    identity.modelTag = myModelTag;
    if (ckptLoaded && ckptModelTag != myModelTag) {
        std::fprintf(
            stderr, "error: %s\n",
            Status::error(ErrCode::Unsupported,
                          "checkpoint was taken under a different "
                          "causality model; resume would replay a "
                          "different access sequence — refusing")
                .toString()
                .c_str());
        return 1;
    }
    if (detectorName == "asyncclock") {
        auto ac = streaming
                      ? std::make_unique<core::DetectorEngine>(
                            model, *source, *checker, cfg)
                      : std::make_unique<core::DetectorEngine>(
                            model, tr, *checker, cfg);
        ac->attachObs(octx);
        acDetector = ac.get();
        detector = std::move(ac);
    } else if (detectorName == "eventracer") {
        if (model != core::ModelKind::Looper) {
            std::fprintf(
                stderr, "error: %s\n",
                Status::error(ErrCode::Unsupported,
                              "the eventracer baseline only "
                              "understands the looper dialect")
                    .toString()
                    .c_str());
            return 1;
        }
        detector =
            streaming
                ? std::make_unique<graph::EventRacerDetector>(
                      *source, *checker,
                      graph::EventRacerConfig{})
                : std::make_unique<graph::EventRacerDetector>(
                      tr, *checker, graph::EventRacerConfig{});
    } else {
        return usage();
    }

    MemStats mem;
    if (octx.metrics) {
        obs::registerMemStats(*octx.metrics, mem);
        octx.metrics->counterFn("run.ops_processed",
                                [&d = *detector] {
                                    return d.opsProcessed();
                                });
    }
    obs::ProgressMeter meter(progressEvery);
    if (checkpointEvery == 0)
        checkpointEvery = 1000000;

    // Live telemetry endpoint. The publisher runs on this (pipeline)
    // thread — registry callbacks read detector-owned fields, so
    // snapshots must come from here; the server thread only ever
    // serves published (frozen) snapshots.
    auto makeSample = [&](std::uint64_t ops) {
        obs::ProgressSample s;
        s.ops = ops;
        s.liveBytes = mem.liveTotal();
        s.peakBytes = mem.peakTotal();
        s.races = checker->racesFound();
        if (sharded)
            s.queueDepths = sharded->queueDepths();
        return s;
    };
    std::unique_ptr<obs::SnapshotPublisher> publisher;
    std::unique_ptr<obs::TelemetryServer> server;
    if (servePort >= 0) {
        publisher = std::make_unique<obs::SnapshotPublisher>(registry);
        server = std::make_unique<obs::TelemetryServer>(*publisher);
        if (!server->start(static_cast<std::uint16_t>(servePort)))
            return 1;
        std::printf("telemetry: serving on "
                    "http://127.0.0.1:%u/metrics\n",
                    unsigned(server->port()));
        // Publish an initial snapshot so the endpoint is useful
        // before the first interval elapses.
        publisher->publish(makeSample(0));
        // A served run is a long-lived process: SIGINT/SIGTERM must
        // drain it (same exit path the daemon uses), not kill it
        // mid-write.
        support::installShutdownHandlers();
    }

    auto start = std::chrono::steady_clock::now();
    std::uint64_t n = 0;
    bool interrupted = false;
    while (detector->processNext()) {
        if ((++n % 1024) == 0) {
            detector->sampleMemory(mem);
            if (publisher)
                publisher->publishIfDue(makeSample(n));
            if (server && support::shutdownRequested()) {
                interrupted = true;
                break;
            }
        }
        if (filter && (n % checkpointEvery) == 0 &&
            !filter->replaying()) {
            // Don't snapshot while still replaying: the restored
            // checker state covers `skip` accesses, not accessesSeen().
            report::CheckpointMeta meta = identity;
            meta.opsProcessed = n;
            meta.accessesChecked = filter->accessesSeen();
            if (Status st = report::saveCheckpoint(checkpointPath,
                                                  meta, *fasttrack);
                !st) {
                std::fprintf(stderr, "checkpoint failed: %s\n",
                             st.toString().c_str());
            } else if (octx.events) {
                octx.events->log(
                    obs::EventLog::Severity::Info, "checkpoint.saved",
                    strf("%llu access(es) checked",
                         (unsigned long long)filter->accessesSeen()),
                    n);
            }
        }
        if (meter.due(n)) {
            detector->sampleMemory(mem);
            meter.report(makeSample(n));
        }
    }
    detector->sampleMemory(mem);
    if (sharded)
        sharded->drain();
    if (interrupted) {
        // Signal-driven drain: publish the last numbers, stop the
        // listener promptly (self-pipe wakeup, no poll race), and
        // leave with the conventional interrupted status. The partial
        // analysis is discarded — a report from a half-read trace
        // would be misleading.
        publisher->publish(makeSample(n));
        server->stop();
        std::fprintf(stderr,
                     "interrupted by signal %d after %llu op(s); "
                     "partial analysis discarded\n",
                     support::shutdownSignal(),
                     (unsigned long long)n);
        return 130;
    }
    auto elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    if (octx.metrics)
        octx.metrics->gauge("run.elapsed_us")
            .set(static_cast<std::int64_t>(elapsed * 1e6));
    if (publisher) {
        // Final snapshot with the end-of-run numbers, then linger so
        // a scraper can still collect it before shutdown.
        publisher->publish(makeSample(n));
        if (serveLingerMs > 0) {
            std::printf("telemetry: lingering %llu ms before "
                        "shutdown...\n",
                        (unsigned long long)serveLingerMs);
            std::fflush(stdout);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(serveLingerMs));
        }
        server->stop();
    }
    // Structured post-mortems, most specific first. None of these
    // abort: a damaged trace, a blown error budget, or a failed shard
    // ends the run with a diagnostic and a nonzero exit.
    if (streaming && !source->ok()) {
        std::fprintf(stderr, "trace stream failed: %s\n",
                     source->status().toString().c_str());
        return 1;
    }
    if (acDetector && !acDetector->runStatus().isOk()) {
        std::fprintf(stderr, "analysis failed: %s\n",
                     acDetector->runStatus().toString().c_str());
        return 1;
    }
    if (sharded && sharded->failed()) {
        std::fprintf(stderr, "analysis failed: %s\n",
                     sharded->failureMessage().c_str());
        return 1;
    }

    std::printf("\nanalysis (%s%s, model=%s, clock=%s): %.3fs, "
                "peak metadata %s\n",
                detectorName.c_str(),
                shards > 0 ? strf(", %u shards", shards).c_str() : "",
                core::modelName(model),
                clock::backendName(clock::defaultBackend()), elapsed,
                humanBytes(mem.peakTotal()).c_str());
    std::printf("%s", mem.summary().c_str());
    if (cfg.phaseTiming && acDetector && n > 0) {
        const std::uint64_t *ph = acDetector->phaseTotalsNs();
        std::uint64_t totalNs = 0;
        for (std::size_t i = 0; i < core::kNumPhases; ++i)
            totalNs += ph[i];
        std::printf("per-phase latency attribution (%llu ops, "
                    "%.3f ms measured):\n",
                    (unsigned long long)n, totalNs / 1e6);
        for (std::size_t i = 0; i < core::kNumPhases; ++i) {
            std::printf(
                "  %-12s %12.3f ms  %5.1f%%  (%7.1f ns/op)\n",
                core::phaseName(static_cast<core::Phase>(i)),
                ph[i] / 1e6,
                totalNs > 0 ? 100.0 * ph[i] / totalNs : 0.0,
                static_cast<double>(ph[i]) / n);
        }
    }

    report::RaceAnalyzer analyzer =
        streaming ? report::RaceAnalyzer(source->meta())
                  : report::RaceAnalyzer(tr);
    report::ReportSummary summary = [&] {
        obs::ScopedSpan span(octx.tracer, obs::kMainTrack,
                             "report_export");
        return analyzer.analyze(checker->races(), filters);
    }();

    // Caveat notes: anything that makes this report less than
    // authoritative is stated in the report itself. The wording lives
    // in core::appendRunNotes, shared with the daemon so both render
    // byte-identical degraded-run reports.
    core::appendRunNotes(summary.notes,
                         source ? source->recordsSkipped() : 0,
                         acDetector ? &acDetector->counters()
                                    : nullptr);
    if (!injectSpec.empty())
        summary.notes.push_back("fault injection active: " +
                                injectSpec);

    // ----- replay verification (--verify) ---------------------------
    report::TriageReport triage;
    verify::VerifySummary vsum;
    // Verification and prediction both need a materialized trace. In
    // streaming mode (including fault injection, which damages the
    // in-memory stream, never the file) reload the file cleanly;
    // flipping orders inside a half-decoded op vector would verify a
    // program that never ran.
    trace::Trace replayTrStorage;
    const trace::Trace *replayTr = &tr;
    if ((verify || predict) && streaming) {
        replayTrStorage = binary ? trace::loadBinaryTraceFile(argv[2])
                                 : trace::loadTraceFile(argv[2]);
        replayTr = &replayTrStorage;
    }
    if (verify) {
        // Candidates are the checker's races under the same
        // user-induced filter as the report; commutativity-filtered
        // pairs stay in, so replay cross-checks the whitelist.
        std::vector<report::RaceReport> candidates;
        for (const report::RaceReport &race : checker->races()) {
            if (filters.userInducedOnly &&
                (!analyzer.userInduced(race.prevSite) ||
                 !analyzer.userInduced(race.curSite))) {
                continue;
            }
            candidates.push_back(race);
        }
        triage = report::buildTriage(candidates);
        verify::VerifyConfig vcfg;
        vcfg.maxClasses = verifyMaxClasses;
        vcfg.maxOps = verifyMaxOps;
        vcfg.obs = octx;
        vsum = verify::verifyTriage(triage, *replayTr, vcfg);
        std::printf("\nverification: %llu replay(s) in %.3fs\n",
                    (unsigned long long)vsum.replays, vsum.wallSec);
        for (const std::string &note : vsum.notes)
            std::fprintf(stderr, "verify note: %s\n", note.c_str());
    }

    // ----- predictive race inference (--predict) --------------------
    predict::PredictResult pres;
    if (predict) {
        predict::PredictConfig pcfg;
        pcfg.bounds.window = predictWindow;
        pcfg.bounds.maxCandidates = predictMaxCandidates;
        pcfg.maxClasses = predictMaxClasses;
        pcfg.maxOps = verifyMaxOps;
        pcfg.obs = octx;
        // The funnel subtracts everything the detector observed, so
        // it gets the unfiltered race list: a framework-noise race is
        // still an observed pair, not a prediction.
        pres = predict::runPrediction(*replayTr, checker->races(),
                                      pcfg);
        std::printf("\nprediction: %llu replay(s) in %.3fs\n",
                    (unsigned long long)pres.summary.replays,
                    pres.summary.wallSec);
        for (const std::string &note : pres.summary.notes)
            std::fprintf(stderr, "predict note: %s\n", note.c_str());
    }

    if (!traceOut.empty()) {
        tracer.writeFile(traceOut);
        std::printf("wrote trace events to %s\n", traceOut.c_str());
    }
    if (!metricsOut.empty()) {
        writeTextFile(metricsOut, registry.snapshot().toJson());
        std::printf("wrote metrics to %s\n", metricsOut.c_str());
    }

    if (json) {
        std::string jsonText;
        if (predict) {
            report::PredictionExport pe;
            pe.triage = &pres.triage;
            pe.candidates = pres.summary.candidates;
            pe.observed = pres.summary.observed;
            pe.hidden = pres.summary.hidden;
            pe.shadowed = pres.summary.shadowed;
            pe.windowDrops = pres.summary.windowDrops;
            pe.capDrops = pres.summary.capDrops;
            pe.malformedDropped = pres.summary.malformedDropped;
            pe.recallScored = pres.summary.recallScored;
            pe.weakRaces = pres.summary.weakRaces;
            pe.observedHits = pres.summary.observedHits;
            pe.combinedHits = pres.summary.combinedHits;
            pe.observedRecall = pres.summary.observedRecall;
            pe.combinedRecall = pres.summary.combinedRecall;
            jsonText = report::toJson(summary, triage, pe, tr);
        } else {
            jsonText = verify ? report::toJson(summary, triage, tr)
                              : report::toJson(summary, tr);
        }
        std::printf("%s\n", jsonText.c_str());
        if (!reportOut.empty()) {
            // Same machine-diffable copy the text path writes; the
            // confirmation goes to stderr so stdout stays pipeable.
            writeTextFile(reportOut, jsonText + "\n");
            std::fprintf(stderr, "wrote report to %s\n",
                         reportOut.c_str());
        }
        return 0;
    }
    std::string reportText =
        report::renderReportText(analyzer, summary);
    if (verify) {
        // Verdict lines carry no timings, so two runs over the same
        // trace produce byte-identical reports (CI diffs them).
        trace::TraceMeta vmeta =
            streaming ? source->meta() : trace::TraceMeta::fromTrace(tr);
        reportText += triage.summary() + "\n";
        for (const report::TriageClass &cls : triage.classes)
            reportText += "  " + report::describeClass(vmeta, cls) + "\n";
        if (predict) {
            // Distinct "predicted" section, same deterministic
            // contract: classes ranked, no timings, byte-identical
            // across runs and clock backends.
            reportText += pres.summary.summary() + "\n";
            for (const report::TriageClass &cls :
                 pres.triage.classes) {
                reportText +=
                    "  " + report::describeClass(vmeta, cls) + "\n";
            }
            std::string recall = pres.summary.recallLine();
            if (!recall.empty())
                reportText += recall + "\n";
        }
    }
    std::printf("\n%s", reportText.c_str());
    if (!reportOut.empty()) {
        // Machine-diffable copy (CI compares a resumed run's report
        // against an uninterrupted one, byte for byte).
        writeTextFile(reportOut, reportText);
        std::printf("wrote report to %s\n", reportOut.c_str());
    }
    return 0;
}

// ----- daemon mode ----------------------------------------------------

int
cmdDaemon(int argc, char **argv, int firstArg, int port)
{
    daemon::DaemonConfig dcfg;
    dcfg.stateDir = "./asyncclockd-state";
    std::string eventsOut;
    for (int i = firstArg; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--port=", 0) == 0) {
            port = static_cast<int>(
                std::strtol(arg.c_str() + 7, nullptr, 10));
        } else if (arg.rfind("--state-dir=", 0) == 0) {
            dcfg.stateDir = arg.substr(12);
        } else if (arg.rfind("--workers=", 0) == 0) {
            dcfg.workers = static_cast<unsigned>(
                std::strtoul(arg.c_str() + 10, nullptr, 10));
        } else if (arg.rfind("--http-threads=", 0) == 0) {
            dcfg.httpThreads = static_cast<unsigned>(
                std::strtoul(arg.c_str() + 15, nullptr, 10));
        } else if (arg.rfind("--max-sessions=", 0) == 0) {
            dcfg.maxSessions =
                std::strtoull(arg.c_str() + 15, nullptr, 10);
        } else if (arg.rfind("--mem-budget=", 0) == 0) {
            dcfg.memBudgetBytes = parseBytes(arg.c_str() + 13);
        } else if (arg.rfind("--idle-timeout-ms=", 0) == 0) {
            dcfg.idleTimeoutMs =
                std::strtoull(arg.c_str() + 18, nullptr, 10);
        } else if (arg.rfind("--watchdog-ms=", 0) == 0) {
            dcfg.watchdogMs =
                std::strtoull(arg.c_str() + 14, nullptr, 10);
        } else if (arg.rfind("--queue-chunks=", 0) == 0) {
            dcfg.queueChunks =
                std::strtoull(arg.c_str() + 15, nullptr, 10);
        } else if (arg.rfind("--admission-timeout-ms=", 0) == 0) {
            dcfg.admissionTimeoutMs =
                std::strtoull(arg.c_str() + 23, nullptr, 10);
        } else if (arg.rfind("--window-ms=", 0) == 0) {
            dcfg.detector.windowMs =
                std::strtoull(arg.c_str() + 12, nullptr, 10);
        } else if (arg == "--all-races") {
            dcfg.filters.userInducedOnly = false;
            dcfg.filters.commutativityFilter = false;
        } else if (arg.rfind("--clock=", 0) == 0) {
            clock::Backend b;
            if (!clock::parseBackend(arg.c_str() + 8, b)) {
                std::fprintf(stderr,
                             "--clock: unknown backend '%s' (want "
                             "%s)\n",
                             arg.c_str() + 8,
                             clock::backendNames());
                return 2;
            }
            clock::setDefaultBackend(b);
            dcfg.detector.clockBackend = b;
        } else if (arg.rfind("--events-out=", 0) == 0) {
            eventsOut = arg.substr(13);
        } else if (arg == "--predict" ||
                   arg.rfind("--predict", 0) == 0) {
            // Prediction replays flipped schedules against a
            // materialized trace; daemon sessions stream and evict,
            // so there is no trace to replay. Explicit refusal beats
            // a generic unknown-option error.
            std::fprintf(stderr,
                         "daemon: --predict is not supported in "
                         "daemon sessions (prediction needs a "
                         "materialized trace to replay); use "
                         "'trace_analyzer analyze --predict'\n");
            return 2;
        } else {
            std::fprintf(stderr, "daemon: unknown option '%s'\n",
                         arg.c_str());
            return usage();
        }
    }
    if (port < 0 || port > 65535) {
        std::fprintf(stderr, "daemon: bad port %d\n", port);
        return 2;
    }
    std::unique_ptr<obs::EventLog> events;
    if (!eventsOut.empty()) {
        events = obs::EventLog::open(eventsOut);
        if (!events)
            fatal("cannot open " + eventsOut + " for writing");
        dcfg.events = events.get();
    }

    support::installShutdownHandlers();
    daemon::Daemon d(dcfg);
    if (Status st = d.init(); !st) {
        std::fprintf(stderr, "daemon: %s\n", st.toString().c_str());
        return 1;
    }
    if (!d.start(static_cast<std::uint16_t>(port)))
        return 1;
    std::printf("asyncclockd: serving on http://127.0.0.1:%u "
                "(state dir %s, %zu session(s) recovered)\n",
                unsigned(d.port()), dcfg.stateDir.c_str(),
                d.sessionCount());
    std::fflush(stdout);

    support::waitForShutdown();
    std::fprintf(stderr,
                 "asyncclockd: signal %d received; draining...\n",
                 support::shutdownSignal());
    d.drain();
    std::fprintf(stderr, "asyncclockd: drained; exiting\n");
    return 0;
}

// ----- feed: the daemon's command-line client -------------------------

struct HttpClientResponse
{
    int status = 0;
    std::string body;
};

/**
 * One HTTP/1.1 request against the local daemon. When
 * truncateBodyTo < body.size(), only that prefix is written and the
 * socket is closed mid-body — the sess-disconnect fault. Returns
 * false on connect/short-response failure (always, for truncated
 * sends).
 */
bool
httpRequest(std::uint16_t port, const std::string &method,
            const std::string &target, const std::string &body,
            HttpClientResponse &out,
            std::size_t truncateBodyTo = ~std::size_t(0))
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return false;
    }
    std::string head = method + " " + target + " HTTP/1.1\r\n" +
                       "Host: 127.0.0.1\r\n" +
                       strf("Content-Length: %zu\r\n", body.size()) +
                       "Connection: close\r\n\r\n";
    std::string payload =
        head + body.substr(0, std::min(truncateBodyTo, body.size()));
    std::size_t sent = 0;
    while (sent < payload.size()) {
        ssize_t n = ::send(fd, payload.data() + sent,
                           payload.size() - sent, MSG_NOSIGNAL);
        if (n <= 0)
            break;
        sent += static_cast<std::size_t>(n);
    }
    if (truncateBodyTo < body.size()) {
        ::close(fd);  // deliberate mid-body disconnect
        return false;
    }
    std::string raw;
    char buf[4096];
    for (;;) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        raw.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    if (raw.rfind("HTTP/1.1 ", 0) != 0 || raw.size() < 12)
        return false;
    out.status =
        static_cast<int>(std::strtol(raw.c_str() + 9, nullptr, 10));
    std::size_t split = raw.find("\r\n\r\n");
    out.body = split == std::string::npos ? "" : raw.substr(split + 4);
    return true;
}

/** Extract "key":NUMBER from a flat JSON object (the daemon's info
 * bodies; no nesting, no escapes in numeric fields). */
std::uint64_t
jsonUint(const std::string &json, const std::string &key)
{
    std::size_t at = json.find("\"" + key + "\":");
    if (at == std::string::npos)
        return 0;
    return std::strtoull(json.c_str() + at + key.size() + 3, nullptr,
                         10);
}

int
cmdFeed(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    const std::string tracePath = argv[2];
    int port = 0;
    std::string sessionId;
    std::size_t chunkBytes = 64 * 1024;
    std::string reportOut;
    std::string interleavePath;
    std::string injectSpec;
    bool doFinish = true;
    for (int i = 3; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--port=", 0) == 0) {
            port = static_cast<int>(
                std::strtol(arg.c_str() + 7, nullptr, 10));
        } else if (arg.rfind("--session=", 0) == 0) {
            sessionId = arg.substr(10);
        } else if (arg.rfind("--chunk-bytes=", 0) == 0) {
            chunkBytes = std::strtoull(arg.c_str() + 14, nullptr, 10);
        } else if (arg.rfind("--report-out=", 0) == 0) {
            reportOut = arg.substr(13);
        } else if (arg.rfind("--interleave-file=", 0) == 0) {
            interleavePath = arg.substr(18);
        } else if (arg.rfind("--inject=", 0) == 0) {
            injectSpec = arg.substr(9);
        } else if (arg == "--no-finish") {
            doFinish = false;
        } else {
            std::fprintf(stderr, "feed: unknown option '%s'\n",
                         arg.c_str());
            return usage();
        }
    }
    if (port <= 0 || sessionId.empty() || chunkBytes == 0) {
        std::fprintf(stderr,
                     "feed: --port=P and --session=ID required\n");
        return 2;
    }
    trace::FaultConfig faults;
    if (!injectSpec.empty()) {
        Expected<trace::FaultConfig> parsed =
            trace::parseFaultSpec(injectSpec);
        if (!parsed) {
            std::fprintf(stderr, "--inject: %s\n",
                         parsed.status().toString().c_str());
            return 2;
        }
        faults = parsed.value();
    }
    if (faults.sessInterleaveAtChunk > 0 && interleavePath.empty()) {
        std::fprintf(stderr, "feed: sess-interleave needs "
                             "--interleave-file=PATH\n");
        return 2;
    }

    auto slurp = [](const std::string &path, std::string &out) {
        std::ifstream in(path, std::ios::binary);
        if (!in)
            return false;
        out.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
        return true;
    };
    std::string data;
    if (!slurp(tracePath, data))
        fatal("cannot read " + tracePath);
    std::string interleave;
    if (!interleavePath.empty() && !slurp(interleavePath, interleave))
        fatal("cannot read " + interleavePath);

    const std::uint16_t p = static_cast<std::uint16_t>(port);
    const std::string base = "/v1/sessions/" + sessionId;
    HttpClientResponse resp;

    // Create — or, after a daemon restart, rejoin: a 409 duplicate
    // means the daemon already holds our spool, so resync the offset
    // from its info instead of starting over.
    std::uint64_t offset = 0;
    if (!httpRequest(p, "POST", "/v1/sessions?id=" + sessionId, "",
                     resp))
        fatal("feed: cannot reach daemon on port " +
              std::to_string(port));
    if (resp.status == 409) {
        if (!httpRequest(p, "GET", base, "", resp) ||
            resp.status != 200)
            fatal("feed: session exists but info failed");
        offset = jsonUint(resp.body, "spooled_bytes");
        std::fprintf(stderr,
                     "feed: rejoining %s at offset %llu\n",
                     sessionId.c_str(), (unsigned long long)offset);
    } else if (resp.status != 201) {
        std::fprintf(stderr, "feed: create failed (%d): %s",
                     resp.status, resp.body.c_str());
        return 1;
    }

    std::uint64_t chunkIndex = 0;
    while (offset < data.size()) {
        ++chunkIndex;
        std::string chunk = data.substr(
            offset, std::min<std::size_t>(chunkBytes,
                                          data.size() - offset));
        const std::string target =
            base + "/trace?offset=" + std::to_string(offset);

        if (faults.sessDupCreateAt == chunkIndex) {
            // Session fault: duplicate create mid-stream. The daemon
            // must answer 409 and leave the live session untouched.
            HttpClientResponse dup;
            if (!httpRequest(p, "POST",
                             "/v1/sessions?id=" + sessionId, "", dup) ||
                dup.status != 409) {
                std::fprintf(stderr,
                             "feed: duplicate create got %d, want "
                             "409\n",
                             dup.status);
                return 1;
            }
            std::fprintf(stderr,
                         "feed: duplicate create correctly refused\n");
        }
        if (faults.sessDisconnectAtChunk == chunkIndex) {
            // Session fault: drop the connection mid-body, then
            // retransmit from the same offset — the daemon must not
            // have spooled the torn bytes.
            httpRequest(p, "POST", target, chunk, resp,
                        chunk.size() / 2);
            std::fprintf(stderr,
                         "feed: disconnected mid-chunk %llu; "
                         "retransmitting\n",
                         (unsigned long long)chunkIndex);
        }
        std::string payload = chunk;
        if (faults.sessInterleaveAtChunk == chunkIndex) {
            // Session fault: splice in bytes from the other dialect.
            // The daemon must quarantine this session only.
            payload = interleave.substr(
                0, std::min(interleave.size(), chunkBytes));
            std::fprintf(stderr,
                         "feed: interleaving %zu foreign byte(s) at "
                         "chunk %llu\n",
                         payload.size(),
                         (unsigned long long)chunkIndex);
        }

        if (!httpRequest(p, "POST", target, payload, resp))
            fatal("feed: daemon connection lost");
        if (resp.status == 429) {
            // Backpressure: honor it and retry the same chunk.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
            --chunkIndex;
            continue;
        }
        if (resp.status == 410) {
            std::fprintf(stderr, "feed: session quarantined: %s",
                         resp.body.c_str());
            return 3;
        }
        if (resp.status != 200) {
            std::fprintf(stderr, "feed: ingest failed (%d): %s",
                         resp.status, resp.body.c_str());
            return 1;
        }
        offset += payload.size();
    }

    if (!doFinish) {
        std::printf("feed: %s: %llu byte(s) sent, left unfinished\n",
                    sessionId.c_str(), (unsigned long long)offset);
        return 0;
    }
    if (!httpRequest(p, "POST", base + "/finish", "", resp) ||
        resp.status != 200) {
        std::fprintf(stderr, "feed: finish failed (%d): %s",
                     resp.status, resp.body.c_str());
        return resp.status == 410 ? 3 : 1;
    }

    // Poll for the report; 202 means the workers are still pumping.
    for (int attempt = 0; attempt < 600; ++attempt) {
        if (!httpRequest(p, "GET", base + "/report", "", resp))
            fatal("feed: daemon connection lost");
        if (resp.status == 202) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
            continue;
        }
        if (resp.status == 410) {
            std::fprintf(stderr, "feed: session quarantined: %s",
                         resp.body.c_str());
            return 3;
        }
        if (resp.status != 200) {
            std::fprintf(stderr, "feed: report failed (%d): %s",
                         resp.status, resp.body.c_str());
            return 1;
        }
        if (!reportOut.empty())
            writeTextFile(reportOut, resp.body);
        else
            std::printf("%s", resp.body.c_str());
        return 0;
    }
    std::fprintf(stderr, "feed: report still pending after 60s\n");
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    if (std::strcmp(argv[1], "gen") == 0)
        return cmdGen(argc, argv);
    if (std::strcmp(argv[1], "analyze") == 0)
        return cmdAnalyze(argc, argv);
    if (std::strcmp(argv[1], "daemon") == 0)
        return cmdDaemon(argc, argv, 2, 0);
    if (std::strncmp(argv[1], "--daemon=", 9) == 0) {
        int port = static_cast<int>(
            std::strtol(argv[1] + 9, nullptr, 10));
        return cmdDaemon(argc, argv, 2, port);
    }
    if (std::strcmp(argv[1], "feed") == 0)
        return cmdFeed(argc, argv);
    return usage();
}
