/**
 * @file
 * Media-player case study: the VLCPlayer playlist bug (paper section
 * 7.7) plus the priority-tag machinery in one realistic app model.
 *
 * VLCPlayer "switches from the audio player mode to the video player
 * mode when the next item in the playlist is a video, without
 * checking if the next item has been nullified because of loading a
 * new playlist" — a NullPointerException in the wild. We model the
 * playlist as shared state written by a "load new playlist" event and
 * read by the "advance to next item" event, with no ordering between
 * the two sends.
 *
 * The model also exercises Delayed (progress-bar ticks), AtFront
 * (user pressed stop — jump the queue), async messages, and event
 * removal (cancel the pending auto-advance when the user intervenes),
 * and shows how the commutativity whitelist removes the benign
 * playback-statistics races.
 *
 * Run: ./build/examples/media_player
 */

#include <cstdio>

#include "core/detector.hh"
#include "report/fasttrack.hh"
#include "report/races.hh"
#include "runtime/runtime.hh"

using namespace asyncclock;
using runtime::PostOpts;
using runtime::Script;

int
main()
{
    runtime::Runtime rt;
    auto uiQueue = rt.addLooper("ui");
    auto playerQueue = rt.addLooper("player");

    // Shared state.
    auto playlist = rt.var("playlist.next",
                           trace::SeedLabel::Harmful);
    auto stats = rt.var("stats.playCount",
                        trace::SeedLabel::HarmlessCommutative);
    auto progress = rt.var("ui.progress");

    auto advanceSite = rt.site("PlaybackService.advance",
                               trace::Frame::User);
    auto loadSite = rt.site("PlaybackService.loadPlaylist",
                            trace::Frame::User);
    auto statSiteA = rt.site("Stats.increment:a", trace::Frame::Library,
                             /*commGroup=*/1);
    auto statSiteB = rt.site("Stats.increment:b", trace::Frame::Library,
                             /*commGroup=*/1);
    auto tickSite = rt.site("ProgressBar.tick", trace::Frame::User);
    auto stopSite = rt.site("PlaybackService.stop",
                            trace::Frame::User);

    // Player engine: advances the playlist when a track finishes.
    // The auto-advance is posted Delayed (track remaining time).
    auto advanceTok = rt.token();
    rt.spawnWorker(
        "engine",
        Script()
            .post(playerQueue,
                  Script()
                      .read(playlist, advanceSite)   // the buggy read
                      .write(stats, statSiteA),
                  PostOpts::delayed(500), advanceTok)
            // Progress ticks: delayed, repeating, async so they jump
            // UI sync barriers during animations.
            .post(uiQueue, Script().write(progress, tickSite),
                  PostOpts::delayed(100, true))
            .post(uiQueue, Script().write(progress, tickSite),
                  PostOpts::delayed(200, true)));

    // The user loads a new playlist concurrently: nullifies the next
    // item with no ordering against the pending auto-advance.
    rt.spawnWorker(
        "user",
        Script()
            .sleep(120)
            .post(playerQueue, Script()
                                   .write(playlist, loadSite)
                                   .write(stats, statSiteB)));

    // Later, the user hits stop: posted AtFront to preempt everything
    // still queued, and the pending auto-advance is removed — too
    // late in this execution, the race already happened.
    rt.spawnWorker("stop-button",
                   Script()
                       .sleep(900)
                       .post(playerQueue,
                             Script().write(playlist, stopSite),
                             PostOpts::atFront())
                       .remove(advanceTok));

    trace::Trace tr = rt.run();
    std::printf("trace: %s\n", tr.stats().summary().c_str());

    report::FastTrackChecker checker;
    core::AsyncClockDetector det(tr, checker, {});
    det.runAll();

    report::RaceAnalyzer analyzer(tr);
    auto summary = analyzer.analyze(checker.races());
    std::printf("%s\n", summary.summary().c_str());
    for (const auto &group : summary.reported)
        std::printf("  %s\n", analyzer.describe(group).c_str());
    std::printf("\nThe playlist advance/load pair is the reported "
                "harmful race; the\nplay-count increments race too "
                "but are whitelisted as commutative.\n");
    return 0;
}
