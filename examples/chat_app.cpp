/**
 * @file
 * Chat-app case study: sync barriers, async messages, binder RPC, and
 * event removal in one app model — the "everything at once" example.
 *
 * The model: a chat UI whose main looper renders messages. During a
 * send animation the app installs a *sync barrier* so ordinary UI
 * updates stall, while the animation's frame callbacks are posted as
 * *async* messages that bypass it (Android's Choreographer idiom).
 * Outgoing messages go through a binder RPC to the "system server";
 * the reply posts a delivery receipt back to the UI. A typing
 * indicator is posted Delayed and removed again when the user stops
 * typing before it fires.
 *
 * Two real bugs are planted:
 *  1. The async animation frames read the message list that the
 *     (barrier-stalled) update event writes — the barrier changes
 *     *scheduling*, not causality, so this is a race the detector
 *     must report.
 *  2. The delivery receipt and a conversation-switch event both
 *     touch the "current conversation" pointer with no ordering —
 *     the classic stale-callback bug.
 *
 * Run: ./build/examples/chat_app
 */

#include <cstdio>

#include "core/detector.hh"
#include "report/export.hh"
#include "report/fasttrack.hh"
#include "report/races.hh"
#include "runtime/runtime.hh"

using namespace asyncclock;
using runtime::PostOpts;
using runtime::Script;

int
main()
{
    runtime::Runtime rt;
    auto ui = rt.addLooper("ui");
    auto systemServer = rt.addBinderPool("system_server", 2);

    auto messageList = rt.var("messageList", trace::SeedLabel::Harmful);
    auto currentConvo = rt.var("currentConversation",
                               trace::SeedLabel::Harmful);
    auto typingFlag = rt.var("typingIndicator");

    auto updateSite = rt.site("ChatView.appendMessage",
                              trace::Frame::User);
    auto frameSite = rt.site("SendAnimation.onFrame",
                             trace::Frame::User);
    auto receiptSite = rt.site("ChatService.onDelivered",
                               trace::Frame::User);
    auto switchSite = rt.site("ChatActivity.switchConversation",
                              trace::Frame::User);
    auto typingSite = rt.site("ChatView.showTyping",
                              trace::Frame::User);

    // The user sends a message: install the barrier, run two async
    // animation frames, post the (sync, stalled) list update, remove
    // the barrier.
    auto barrier = rt.token();
    auto delivered = rt.handle("delivered");
    rt.spawnWorker(
        "send-flow",
        Script()
            .postBarrier(ui, barrier)
            .post(ui, Script().read(messageList, frameSite),
                  PostOpts::delayed(0, /*async=*/true))
            .post(ui, Script().read(messageList, frameSite),
                  PostOpts::delayed(16, /*async=*/true))
            .post(ui, Script().write(messageList, updateSite))
            .sleep(40)
            .removeBarrier(barrier)
            // RPC to the system server; its reply posts the receipt.
            .post(systemServer,
                  Script()
                      .sleep(25)
                      .post(ui, Script()
                                    .read(currentConvo, receiptSite)
                                    .write(messageList, updateSite))
                      .signal(delivered))
            .await(delivered));

    // Meanwhile the user switches conversations (no ordering against
    // the in-flight receipt) and starts/stops typing (the Delayed
    // indicator is removed before it fires).
    auto typingTok = rt.token();
    rt.spawnWorker(
        "input",
        Script()
            .sleep(30)
            .post(ui, Script().write(currentConvo, switchSite))
            .post(ui, Script().write(typingFlag, typingSite),
                  PostOpts::delayed(3000), typingTok)
            .sleep(20)
            .remove(typingTok));

    trace::Trace tr = rt.run();
    std::printf("trace: %s\n", tr.stats().summary().c_str());

    report::FastTrackChecker checker;
    core::AsyncClockDetector det(tr, checker, {});
    det.runAll();
    report::RaceAnalyzer analyzer(tr);
    auto summary = analyzer.analyze(checker.races());

    std::printf("%s\n", summary.summary().c_str());
    for (const auto &group : summary.reported)
        std::printf("  %s\n", analyzer.describe(group).c_str());
    std::printf("\nJSON export:\n%s\n",
                report::toJson(summary, tr).c_str());

    // Expect both planted bugs: the animation-vs-update race (the
    // barrier does not order them) and the receipt-vs-switch race.
    return summary.harmful >= 2 ? 0 : 1;
}
