/**
 * @file
 * Edge-case tests across the pipeline: empty traces, events that
 * never get dispatched (stalled behind a barrier), empty event
 * bodies, multi-waiter handles, zero-variable traces, and detectors
 * driven op-by-op rather than via runAll.
 */

#include <gtest/gtest.h>

#include "core/detector.hh"
#include "gold/closure.hh"
#include "graph/eventracer.hh"
#include "report/checker.hh"
#include "report/races.hh"
#include "runtime/runtime.hh"
#include "trace/trace_io.hh"

namespace asyncclock {
namespace {

using runtime::PostOpts;
using runtime::Runtime;
using runtime::Script;
using trace::Trace;

core::DetectorConfig
exactConfig()
{
    core::DetectorConfig cfg;
    cfg.windowMs = 0;
    return cfg;
}

TEST(Edge, EmptyTrace)
{
    Trace tr;
    EXPECT_EQ(tr.validate(true), "");
    gold::Closure hb(tr);
    EXPECT_TRUE(hb.races().empty());
    report::ExactChecker c1, c2;
    core::AsyncClockDetector ac(tr, c1, exactConfig());
    ac.runAll();
    graph::EventRacerDetector er(tr, c2);
    er.runAll();
    EXPECT_EQ(ac.opsProcessed(), 0u);
    EXPECT_EQ(er.opsProcessed(), 0u);
    // Round-trips too.
    std::string text = trace::writeTraceToString(tr);
    Trace back;
    std::string err;
    ASSERT_TRUE(trace::readTraceFromString(text, back, err)) << err;
}

TEST(Edge, UndeliveredEventsBehindBarrier)
{
    // Sync events stalled behind a never-removed barrier are sent but
    // never begin; both detectors must cope (pending metadata simply
    // stays pending) and the trace round-trips.
    Runtime rt;
    auto q = rt.addLooper("main");
    auto x = rt.var("x");
    auto s = rt.site("s", trace::Frame::User);
    auto bar = rt.token();
    rt.spawnWorker("w", Script()
                            .write(x, s)
                            .postBarrier(q, bar)
                            .post(q, Script().read(x, s))
                            .post(q, Script().write(x, s)));
    Trace tr = rt.run();
    ASSERT_EQ(tr.validate(true), "");
    EXPECT_EQ(rt.lastRun().undelivered, 2u);

    gold::Closure hb(tr);
    report::ExactChecker c1, c2;
    core::AsyncClockDetector ac(tr, c1, exactConfig());
    ac.runAll();
    graph::EventRacerDetector er(tr, c2);
    er.runAll();
    // Undelivered events have no accesses: no races anywhere.
    EXPECT_TRUE(hb.races().empty());
    EXPECT_TRUE(c1.races().empty());
    EXPECT_TRUE(c2.races().empty());
    // The undelivered events' metadata is still live (pending).
    EXPECT_GE(ac.counters().eventsLive, 2u);
}

TEST(Edge, EmptyEventBodies)
{
    Runtime rt;
    auto q = rt.addLooper("main");
    rt.spawnWorker("w", Script()
                            .post(q, Script())
                            .post(q, Script(), PostOpts::atFront())
                            .post(q, Script(), PostOpts::delayed(5)));
    Trace tr = rt.run();
    ASSERT_EQ(tr.validate(true), "");
    report::ExactChecker c;
    core::AsyncClockDetector ac(tr, c, exactConfig());
    ac.runAll();
    EXPECT_TRUE(c.races().empty());
}

TEST(Edge, ManyWaitersOneSignal)
{
    Runtime rt;
    auto x = rt.var("x");
    auto s = rt.site("s", trace::Frame::User);
    auto h = rt.handle("broadcast");
    rt.spawnWorker("writer", Script().write(x, s).signal(h));
    for (int i = 0; i < 5; ++i) {
        rt.spawnWorker("reader" + std::to_string(i),
                       Script().await(h).read(x, s));
    }
    Trace tr = rt.run();
    ASSERT_EQ(tr.validate(true), "");
    gold::Closure hb(tr);
    EXPECT_TRUE(hb.races().empty());
    report::ExactChecker c;
    core::AsyncClockDetector ac(tr, c, exactConfig());
    ac.runAll();
    EXPECT_TRUE(c.races().empty());
}

TEST(Edge, StepwiseDrivingMatchesRunAll)
{
    Runtime rt;
    auto q = rt.addLooper("main");
    auto x = rt.var("x");
    auto s = rt.site("s", trace::Frame::User);
    rt.spawnWorker("w1", Script().post(q, Script().write(x, s)));
    rt.spawnWorker("w2", Script().post(q, Script().write(x, s)));
    Trace tr = rt.run();

    report::ExactChecker c1, c2;
    core::AsyncClockDetector a(tr, c1, exactConfig());
    a.runAll();
    core::AsyncClockDetector b(tr, c2, exactConfig());
    std::uint64_t steps = 0;
    while (b.processNext())
        ++steps;
    EXPECT_EQ(steps, tr.numOps());
    EXPECT_FALSE(b.processNext());  // idempotent at end
    EXPECT_EQ(c1.races().size(), c2.races().size());
}

TEST(Edge, ReportOnTraceWithoutSites)
{
    // Accesses can carry no site (kInvalidId); the analyzer must
    // treat them as non-user-induced rather than crash.
    Trace tr;
    auto q = tr.addQueue(trace::QueueKind::Looper, "main");
    auto looper = tr.addThread(trace::ThreadKind::Looper, "main", q);
    tr.bindLooper(q, looper);
    auto w = tr.addThread(trace::ThreadKind::Worker, "w");
    auto x = tr.addVar("x");
    tr.threadBegin(looper, 0);
    tr.threadBegin(w, 0);
    tr.write(trace::Task::thread(w), x, trace::kInvalidId, 1);
    tr.threadEnd(w, 2);
    tr.threadEnd(looper, 3);
    ASSERT_EQ(tr.validate(true), "");
    report::RaceAnalyzer analyzer(tr);
    EXPECT_FALSE(analyzer.userInduced(trace::kInvalidId));
    report::ReportSummary summary = analyzer.analyze({});
    EXPECT_EQ(summary.allGroups, 0u);
}

TEST(Edge, GcIntervalOneOpIsStable)
{
    // Degenerate config: GC after every op must not perturb results.
    Runtime rt;
    auto q = rt.addLooper("main");
    auto x = rt.var("x");
    auto s = rt.site("s", trace::Frame::User);
    rt.spawnWorker("w1", Script().post(q, Script().write(x, s)));
    rt.spawnWorker("w2", Script().post(q, Script().write(x, s)));
    Trace tr = rt.run();

    report::ExactChecker c;
    core::DetectorConfig cfg = exactConfig();
    cfg.gcIntervalOps = 1;
    core::AsyncClockDetector det(tr, c, cfg);
    det.runAll();
    EXPECT_EQ(c.races().size(), 1u);
    EXPECT_EQ(det.counters().gcSweeps, tr.numOps());
}

TEST(Edge, WindowSmallerThanEveryGap)
{
    // A 1ms window ages everything instantly; analysis must still be
    // race-subset-correct and reclaim essentially all metadata.
    Runtime rt;
    auto q = rt.addLooper("main");
    auto x = rt.var("x");
    auto s = rt.site("s", trace::Frame::User);
    rt.spawnWorker("w", Script()
                            .post(q, Script().write(x, s))
                            .sleep(100)
                            .post(q, Script().write(x, s)));
    Trace tr = rt.run();
    report::ExactChecker c;
    core::DetectorConfig cfg;
    cfg.windowMs = 1;
    cfg.gcIntervalOps = 4;
    core::AsyncClockDetector det(tr, c, cfg);
    det.runAll();
    EXPECT_TRUE(c.races().empty());  // ordered anyway (FIFO)
    EXPECT_GT(det.counters().invalidatedByWindow, 0u);
}

} // namespace
} // namespace asyncclock
