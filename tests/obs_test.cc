/**
 * @file
 * Observability layer tests: metrics registry semantics (including
 * concurrent hot-path updates — run under TSan in CI), the stable
 * metrics JSON schema (golden string), Chrome trace-event output
 * well-formedness, the progress heartbeat layout, rate-limited
 * warnings, the MemStats underflow guard, and the ShardedChecker's
 * obs hookup end to end.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "clock/vector_clock.hh"
#include "core/detector.hh"
#include "obs/metrics.hh"
#include "obs/obs.hh"
#include "obs/progress.hh"
#include "obs/trace_events.hh"
#include "report/fasttrack.hh"
#include "report/sharded.hh"
#include "support/logging.hh"
#include "support/stats.hh"
#include "workload/workload.hh"

namespace asyncclock {
namespace {

// ---------------------------------------------------------------------
// Minimal JSON well-formedness checker. The library is write-only by
// design (support/json.hh), so the tests bring their own reader.

struct JsonValidator
{
    const std::string &s;
    std::size_t i = 0;

    void
    ws()
    {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
    }

    bool
    lit(const char *t)
    {
        std::size_t n = std::strlen(t);
        if (s.compare(i, n, t) != 0)
            return false;
        i += n;
        return true;
    }

    bool
    string()
    {
        if (i >= s.size() || s[i] != '"')
            return false;
        for (++i; i < s.size(); ++i) {
            if (s[i] == '\\') {
                ++i;
            } else if (s[i] == '"') {
                ++i;
                return true;
            }
        }
        return false;
    }

    bool
    number()
    {
        std::size_t start = i;
        if (i < s.size() && s[i] == '-')
            ++i;
        while (i < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[i])) ||
                std::strchr(".eE+-", s[i])))
            ++i;
        return i > start;
    }

    bool
    value()
    {
        ws();
        if (i >= s.size())
            return false;
        switch (s[i]) {
          case '{': return members('}');
          case '[': return members(']');
          case '"': return string();
          case 't': return lit("true");
          case 'f': return lit("false");
          case 'n': return lit("null");
          default: return number();
        }
    }

    /** Parse `{...}` or `[...]` starting at the opening bracket. */
    bool
    members(char close)
    {
        ++i;
        ws();
        if (i < s.size() && s[i] == close) {
            ++i;
            return true;
        }
        while (true) {
            ws();
            if (close == '}') {
                if (!string())
                    return false;
                ws();
                if (i >= s.size() || s[i] != ':')
                    return false;
                ++i;
            }
            if (!value())
                return false;
            ws();
            if (i < s.size() && s[i] == ',') {
                ++i;
                continue;
            }
            if (i < s.size() && s[i] == close) {
                ++i;
                return true;
            }
            return false;
        }
    }
};

bool
validJson(const std::string &s)
{
    JsonValidator v{s};
    if (!v.value())
        return false;
    v.ws();
    return v.i == s.size();
}

TEST(JsonValidatorSelfTest, AcceptsAndRejects)
{
    EXPECT_TRUE(validJson("{}"));
    EXPECT_TRUE(validJson("{\"a\":[1,-2,\"x\"],\"b\":{\"c\":true}}"));
    EXPECT_FALSE(validJson("{\"a\":}"));
    EXPECT_FALSE(validJson("{\"a\":1"));
    EXPECT_FALSE(validJson("{\"a\":1}trailing"));
    EXPECT_FALSE(validJson("[1,]"));
}

// ---------------------------------------------------------------------
// Metrics registry

TEST(Metrics, CounterAndGaugeSemantics)
{
    obs::MetricsRegistry reg;
    obs::Counter &c = reg.counter("x");
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);

    obs::Gauge &g = reg.gauge("y");
    g.set(-5);
    g.add(2);
    EXPECT_EQ(g.value(), -3);

    // Create-or-get: the same name yields the same object.
    EXPECT_EQ(&reg.counter("x"), &c);
    EXPECT_EQ(&reg.gauge("y"), &g);
}

TEST(Metrics, HistogramBucketsAndStats)
{
    obs::Histogram h({10, 100});
    EXPECT_EQ(h.min(), 0u);  // empty
    h.observe(0);
    h.observe(10);    // bounds are inclusive upper bounds
    h.observe(11);
    h.observe(5000);  // overflow bucket
    EXPECT_EQ(h.numBuckets(), 3u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 5021u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 5000u);
}

TEST(Metrics, ConcurrentUpdates)
{
    obs::MetricsRegistry reg;
    obs::Counter &c = reg.counter("ops");
    obs::Gauge &g = reg.gauge("level");
    obs::Histogram &h = reg.histogram("lat", {1, 8, 64});

    constexpr int kThreads = 4;
    constexpr int kIters = 10000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            for (int i = 0; i < kIters; ++i) {
                c.inc();
                g.add(t % 2 ? 1 : -1);
                h.observe(static_cast<std::uint64_t>(i % 100));
            }
        });
    }
    // Snapshot while the workers hammer the metrics: must be safe,
    // values merely approximate.
    (void)reg.snapshot();
    for (auto &w : workers)
        w.join();

    EXPECT_EQ(c.value(), std::uint64_t(kThreads) * kIters);
    EXPECT_EQ(g.value(), 0);
    EXPECT_EQ(h.count(), std::uint64_t(kThreads) * kIters);
    std::uint64_t bucketSum = 0;
    for (std::size_t i = 0; i < h.numBuckets(); ++i)
        bucketSum += h.bucketCount(i);
    EXPECT_EQ(bucketSum, h.count());
    EXPECT_EQ(h.max(), 99u);
}

TEST(Metrics, CallbackMetricsMergeSorted)
{
    obs::MetricsRegistry reg;
    reg.counter("b.owned").inc(2);
    std::uint64_t backing = 7;
    reg.counterFn("a.cb", [&backing] { return backing; });
    reg.gaugeFn("z.cb", [] { return std::int64_t(-1); });
    reg.gauge("m.owned").set(3);

    obs::MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 2u);
    EXPECT_EQ(snap.counters[0].first, "a.cb");
    EXPECT_EQ(snap.counters[0].second, 7u);
    EXPECT_EQ(snap.counters[1].first, "b.owned");
    ASSERT_EQ(snap.gauges.size(), 2u);
    EXPECT_EQ(snap.gauges[0].first, "m.owned");
    EXPECT_EQ(snap.gauges[1].first, "z.cb");

    backing = 9;  // callbacks are re-evaluated per snapshot
    EXPECT_EQ(reg.snapshot().counters[0].second, 9u);
}

TEST(Metrics, GoldenJson)
{
    obs::MetricsRegistry reg;
    reg.counter("a.count").inc(3);
    reg.gauge("b.gauge").set(-7);
    obs::Histogram &h = reg.histogram("c.hist", {1, 10, 100});
    h.observe(0);
    h.observe(5);
    h.observe(1000);

    std::string json = reg.snapshot().toJson();
    EXPECT_EQ(json,
              "{\"schema\":\"asyncclock-metrics-v1\","
              "\"counters\":{\"a.count\":3},"
              "\"gauges\":{\"b.gauge\":-7},"
              "\"histograms\":{\"c.hist\":{"
              "\"bounds\":[1,10,100],\"counts\":[1,1,0,1],"
              "\"count\":3,\"sum\":1005,\"min\":0,\"max\":1000}}}");
    EXPECT_TRUE(validJson(json));
}

TEST(Metrics, RegisterMemStats)
{
    obs::MetricsRegistry reg;
    MemStats mem;
    obs::registerMemStats(reg, mem);
    mem.alloc(MemCat::VectorClock, 128);
    mem.alloc(MemCat::VectorClock, 64);
    mem.release(MemCat::VectorClock, 100);

    obs::MetricsSnapshot snap = reg.snapshot();
    auto gauge = [&](const std::string &name) -> std::int64_t {
        for (const auto &[n, v] : snap.gauges)
            if (n == name)
                return v;
        ADD_FAILURE() << "gauge not found: " << name;
        return -1;
    };
    EXPECT_EQ(gauge("mem.live.vector-clock"), 92);
    EXPECT_EQ(gauge("mem.peak.vector-clock"), 192);
    EXPECT_EQ(gauge("mem.live.total"), 92);
    EXPECT_EQ(gauge("mem.peak.total"), 192);
}

// ---------------------------------------------------------------------
// Span tracing

TEST(TraceEvents, TracksSpansAndJson)
{
    obs::Tracer tracer;
    int shard0 = tracer.registerTrack("shard-0");
    int shard1 = tracer.registerTrack("shard-1");
    EXPECT_EQ(shard0, 1);
    EXPECT_EQ(shard1, 2);

    tracer.span(obs::kMainTrack, "pump", 10, 30, "{\"ops\":512}");
    tracer.span(shard0, "check_batch", 12, 20);
    tracer.span(obs::kMainTrack, "gc_sweep", 35, 40);
    {
        obs::ScopedSpan s(&tracer, shard1, "check_batch");
    }

    std::string json = tracer.toJson();
    EXPECT_TRUE(validJson(json)) << json;
    // The essential Chrome trace-event fields must be present.
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\":"), std::string::npos);
    EXPECT_NE(json.find("\"tid\":"), std::string::npos);
    EXPECT_NE(json.find("\"args\":{\"ops\":512}"), std::string::npos);
    EXPECT_NE(json.find("thread_name"), std::string::npos);

    // Spans on each track must have monotonically non-decreasing
    // start timestamps (each track is one thread's timeline).
    std::vector<obs::Tracer::Event> events = tracer.events();
    std::map<int, std::uint64_t> lastTs;
    for (const auto &ev : events) {
        if (ev.ph != 'X')
            continue;
        auto it = lastTs.find(ev.tid);
        if (it != lastTs.end()) {
            EXPECT_GE(ev.ts, it->second)
                << "ts regressed on tid " << ev.tid;
        }
        lastTs[ev.tid] = ev.ts;
    }
    EXPECT_EQ(lastTs.size(), 3u);  // main + both shards saw spans
}

TEST(TraceEvents, NullTracerScopedSpanIsFree)
{
    // Must not crash or record anything; this is the disabled path
    // every instrumentation site takes by default.
    obs::ScopedSpan s(nullptr, obs::kMainTrack, "noop");
}

// ---------------------------------------------------------------------
// Progress heartbeat

TEST(Progress, DueAndFormat)
{
    obs::ProgressMeter off(0);
    EXPECT_FALSE(off.enabled());
    EXPECT_FALSE(off.due(1000000));

    obs::ProgressMeter meter(1000);
    EXPECT_TRUE(meter.enabled());
    EXPECT_FALSE(meter.due(999));
    EXPECT_TRUE(meter.due(1000));

    obs::ProgressSample s;
    s.ops = 50000;
    s.liveBytes = 1 << 20;
    s.peakBytes = 2 << 20;
    s.races = 3;
    s.queueDepths = {4, 0, 7};
    std::string line = meter.format(s, 12345.0);
    EXPECT_NE(line.find("[progress]"), std::string::npos);
    EXPECT_NE(line.find("50,000 ops"), std::string::npos);
    EXPECT_NE(line.find("ops/s"), std::string::npos);
    EXPECT_NE(line.find("races 3"), std::string::npos);
    EXPECT_NE(line.find("queues [4 0 7]"), std::string::npos);

    s.queueDepths.clear();
    EXPECT_EQ(meter.format(s, 1.0).find("queues"), std::string::npos);
}

// ---------------------------------------------------------------------
// Satellites: rate-limited warnings, MemStats underflow guard

TEST(Logging, WarnRateLimited)
{
    testing::internal::CaptureStderr();
    for (int i = 0; i < 10; ++i)
        warnRateLimited("obs_test.limited", "boom", 3);
    std::string err = testing::internal::GetCapturedStderr();
    std::size_t warns = 0, pos = 0;
    while ((pos = err.find("boom", pos)) != std::string::npos) {
        ++warns;
        pos += 4;
    }
    EXPECT_EQ(warns, 3u);
    EXPECT_NE(err.find("further warnings suppressed"),
              std::string::npos);

    // A different key has its own budget.
    testing::internal::CaptureStderr();
    warnOnce("obs_test.once", "single");
    warnOnce("obs_test.once", "single");
    err = testing::internal::GetCapturedStderr();
    EXPECT_EQ(err.find("single"), err.rfind("single"));
}

using ObsDeathTest = ::testing::Test;

TEST(ObsDeathTest, MemStatsReleaseUnderflowPanics)
{
    MemStats mem;
    mem.alloc(MemCat::Other, 8);
    EXPECT_DEATH(mem.release(MemCat::Other, 9),
                 "MemStats release underflow");
}

// ---------------------------------------------------------------------
// ShardedChecker observability hookup

TEST(ShardedObs, MetricsAndSpansEndToEnd)
{
    obs::MetricsRegistry registry;
    obs::Tracer tracer;

    report::ShardedConfig cfg;
    cfg.shards = 2;
    cfg.batchOps = 4;  // force several batches
    cfg.obs = obs::ObsContext{&registry, &tracer};
    report::ShardedChecker checker(cfg);

    // Two unordered writes per variable -> one race per variable.
    for (std::uint32_t var = 0; var < 8; ++var) {
        for (std::uint32_t chain = 0; chain < 2; ++chain) {
            report::Access a;
            a.op = var * 2 + chain;
            a.epoch = {chain, 1};
            a.isWrite = true;
            clock::VectorClock vc;
            vc.raise(chain, 1);
            checker.onAccess(var, a, vc);
        }
    }
    checker.drain();
    EXPECT_EQ(checker.races().size(), 8u);
    EXPECT_EQ(checker.racesFound(), 8u);

    obs::MetricsSnapshot snap = registry.snapshot();
    auto counter = [&](const std::string &name) -> std::uint64_t {
        for (const auto &[n, v] : snap.counters)
            if (n == name)
                return v;
        ADD_FAILURE() << "counter not found: " << name;
        return 0;
    };
    EXPECT_EQ(counter("sharded.races_found"), 8u);
    counter("sharded.enqueue_blocked");  // must exist (any value)
    bool sawShardGauge = false, sawShardCount = false;
    for (const auto &[n, v] : snap.gauges) {
        if (n == obs::seriesName("sharded.queue_depth",
                                 {{"shard", "0"}}))
            sawShardGauge = true;
        if (n == "sharded.shards") {
            sawShardCount = true;
            EXPECT_EQ(v, 2);
        }
    }
    EXPECT_TRUE(sawShardGauge);
    EXPECT_TRUE(sawShardCount);
    ASSERT_EQ(snap.histograms.size(), 1u);
    EXPECT_EQ(snap.histograms[0].name, "sharded.batch_check_us");
    EXPECT_GE(snap.histograms[0].count, 1u);

    // Every shard worker got its own track and emitted batch spans.
    bool sawBatchSpan = false, sawDrainSpan = false;
    for (const auto &ev : tracer.events()) {
        if (ev.ph == 'X' && ev.name == "check_batch") {
            EXPECT_GT(ev.tid, 0);
            sawBatchSpan = true;
        }
        if (ev.ph == 'X' && ev.name == "shard_drain") {
            EXPECT_EQ(ev.tid, obs::kMainTrack);
            sawDrainSpan = true;
        }
    }
    EXPECT_TRUE(sawBatchSpan);
    EXPECT_TRUE(sawDrainSpan);
    EXPECT_TRUE(validJson(tracer.toJson()));
}

// ---------------------------------------------------------------------
// Detector observability hookup

TEST(DetectorObs, CountersRegisteredAndPumpSpansEmitted)
{
    workload::AppProfile profile =
        workload::profileByName("AnyMemo", 0.005);
    workload::GeneratedApp app = workload::generateApp(profile);

    obs::MetricsRegistry registry;
    obs::Tracer tracer;
    report::FastTrackChecker checker;
    core::AsyncClockDetector det(app.trace, checker);
    det.attachObs(obs::ObsContext{&registry, &tracer});
    det.runAll();

    obs::MetricsSnapshot snap = registry.snapshot();
    auto counter = [&](const std::string &name) -> std::uint64_t {
        for (const auto &[n, v] : snap.counters)
            if (n == name)
                return v;
        ADD_FAILURE() << "counter not found: " << name;
        return 0;
    };
    EXPECT_EQ(counter("detector.ops_processed"), det.opsProcessed());
    EXPECT_EQ(counter("detector.events_seen"),
              det.counters().eventsSeen);
    EXPECT_GT(counter("detector.clock_ticks"), 0u);
    EXPECT_GT(counter("detector.clock_joins"), 0u);
    EXPECT_GT(counter("detector.gc_sweeps"), 0u);

    // The pump spans cover the whole run: their op counts add up to
    // the processed total.
    std::uint64_t pumpedOps = 0;
    for (const auto &ev : tracer.events()) {
        if (ev.ph != 'X' || ev.name != "pump")
            continue;
        EXPECT_EQ(ev.tid, obs::kMainTrack);
        std::size_t p = ev.args.find("\"ops\":");
        ASSERT_NE(p, std::string::npos);
        pumpedOps += std::strtoull(ev.args.c_str() + p + 6, nullptr,
                                   10);
    }
    EXPECT_EQ(pumpedOps, det.opsProcessed());
    EXPECT_TRUE(validJson(tracer.toJson()));
}

} // namespace
} // namespace asyncclock
