/**
 * @file
 * Async-dialect trace tests: the new record kinds (TaskSpawn,
 * TaskAwait, ScopeEnd, TaskCancel) must round-trip through both
 * serialization formats, damaged async files must be rejected with a
 * diagnostic instead of mis-parsed, and the async protocol validator
 * must catch each rule it claims to enforce.
 */

#include <gtest/gtest.h>

#include "runtime/taskgraph.hh"
#include "trace/trace.hh"
#include "trace/trace_io.hh"

namespace asyncclock::trace {
namespace {

/** Hand-built minimal async trace: main spawns one task into a
 * scope, the task runs on an executor, main awaits it and closes the
 * scope. Exercises every async record kind except TaskCancel. */
Trace
tinyAsync()
{
    Trace tr;
    tr.setDialect(Dialect::Async);
    ThreadId main = tr.addThread(ThreadKind::Worker, "main");
    ThreadId exec = tr.addThread(ThreadKind::Worker, "exec");
    EventId t = tr.addEvent();
    HandleId scope = tr.addHandle("main.scope");
    VarId v = tr.addVar("v");
    SiteId s = tr.addSite("site", Frame::User);
    Task m = Task::thread(main);
    Task body = Task::event(t);
    tr.threadBegin(main, 0);
    tr.threadBegin(exec, 0);
    tr.write(m, v, s, 1);
    tr.taskSpawn(m, t, scope, 2);
    tr.eventBegin(t, exec, 3);
    tr.read(body, v, s, 4);
    tr.eventEnd(t, 5);
    tr.taskAwait(m, t, 6);
    tr.scopeEnd(m, scope, 7);
    tr.threadEnd(main, 8);
    tr.threadEnd(exec, 8);
    return tr;
}

/** Same shape plus a second task that is cancelled before it runs. */
Trace
tinyAsyncWithCancel()
{
    Trace tr;
    tr.setDialect(Dialect::Async);
    ThreadId main = tr.addThread(ThreadKind::Worker, "main");
    ThreadId exec = tr.addThread(ThreadKind::Worker, "exec");
    EventId t = tr.addEvent();
    EventId doomed = tr.addEvent();
    HandleId scope = tr.addHandle("main.scope");
    Task m = Task::thread(main);
    tr.threadBegin(main, 0);
    tr.threadBegin(exec, 0);
    tr.taskSpawn(m, t, scope, 1);
    tr.taskSpawn(m, doomed, scope, 2);
    tr.taskCancel(m, doomed, 3);
    tr.eventBegin(t, exec, 4);
    tr.eventEnd(t, 5);
    tr.taskAwait(m, t, 6);
    tr.scopeEnd(m, scope, 7);
    tr.threadEnd(main, 8);
    tr.threadEnd(exec, 8);
    return tr;
}

void
expectSameOps(const Trace &a, const Trace &b)
{
    ASSERT_EQ(a.numOps(), b.numOps());
    EXPECT_EQ(a.dialect(), b.dialect());
    for (OpId i = 0; i < a.numOps(); ++i) {
        const Operation &x = a.op(i);
        const Operation &y = b.op(i);
        EXPECT_EQ(x.kind, y.kind) << "op " << i;
        EXPECT_EQ(x.task.raw(), y.task.raw()) << "op " << i;
        EXPECT_EQ(x.target, y.target) << "op " << i;
        EXPECT_EQ(x.event, y.event) << "op " << i;
        EXPECT_EQ(x.site, y.site) << "op " << i;
        EXPECT_EQ(x.vtime, y.vtime) << "op " << i;
    }
}

// ---------------------------------------------------------------
// Round-trips.
// ---------------------------------------------------------------

TEST(AsyncDialect, TextRoundTripsEveryRecordKind)
{
    Trace tr = tinyAsyncWithCancel();
    ASSERT_EQ(tr.validate(true), "");
    std::string text = writeTraceToString(tr);
    EXPECT_EQ(text.rfind("asyncclock-trace v2 async", 0), 0u)
        << "async traces must carry the dialect in the header";
    Trace back;
    std::string err;
    ASSERT_TRUE(readTraceFromString(text, back, err)) << err;
    expectSameOps(tr, back);
    EXPECT_EQ(back.validate(true), "");
}

TEST(AsyncDialect, BinaryRoundTripsEveryRecordKind)
{
    Trace tr = tinyAsyncWithCancel();
    std::string blob = writeBinaryTraceToString(tr);
    Trace back;
    std::string err;
    ASSERT_TRUE(readBinaryTraceFromString(blob, back, err)) << err;
    expectSameOps(tr, back);
    EXPECT_EQ(back.validate(true), "");
}

TEST(AsyncDialect, GeneratorOutputRoundTripsBothFormats)
{
    runtime::TaskGraph tg({1, 2});
    VarId v = tg.var("shared");
    SiteId s = tg.site("w", Frame::User);
    auto t1 = tg.task("t1");
    auto t2 = tg.task("t2");
    tg.write(runtime::TaskGraph::kMain, v, s);
    tg.spawn(runtime::TaskGraph::kMain, t1);
    tg.spawn(runtime::TaskGraph::kMain, t2);
    tg.read(t1, v, s);
    tg.read(t2, v, s);
    tg.await(runtime::TaskGraph::kMain, t1);
    Trace tr = tg.run();
    ASSERT_EQ(tr.validate(true), "");

    std::string err;
    Trace t;
    ASSERT_TRUE(readTraceFromString(writeTraceToString(tr), t, err))
        << err;
    expectSameOps(tr, t);
    Trace b;
    ASSERT_TRUE(
        readBinaryTraceFromString(writeBinaryTraceToString(tr), b,
                                  err))
        << err;
    expectSameOps(tr, b);
}

// ---------------------------------------------------------------
// Damage rejection: truncation and corruption must produce a
// diagnostic, never a silently different trace.
// ---------------------------------------------------------------

TEST(AsyncDialect, BinaryTruncationAlwaysRejected)
{
    std::string blob = writeBinaryTraceToString(tinyAsyncWithCancel());
    // Every proper prefix is missing at least the end marker.
    for (std::size_t n = 0; n < blob.size(); ++n) {
        Trace back;
        std::string err;
        EXPECT_FALSE(readBinaryTraceFromString(blob.substr(0, n),
                                               back, err))
            << "prefix of " << n << " bytes parsed";
        EXPECT_FALSE(err.empty());
    }
}

TEST(AsyncDialect, AsyncRecordsRejectedInLooperVersionFile)
{
    // Flip the version byte (right after the 4-byte magic) back to 1:
    // the async record tags are not words of the v1 looper format.
    std::string blob = writeBinaryTraceToString(tinyAsyncWithCancel());
    ASSERT_GT(blob.size(), 5u);
    blob[4] = 1;
    Trace back;
    std::string err;
    EXPECT_FALSE(readBinaryTraceFromString(blob, back, err));
    EXPECT_FALSE(err.empty());
}

TEST(AsyncDialect, TextAsyncOpsRejectedUnderLooperHeader)
{
    Trace tr = tinyAsync();
    std::string text = writeTraceToString(tr);
    const std::string asyncHeader = "asyncclock-trace v2 async";
    ASSERT_EQ(text.rfind(asyncHeader, 0), 0u);
    // Demote the header to the looper dialect; the spawn/await lines
    // that follow must now fail to parse.
    std::string looperText =
        "asyncclock-trace v1" + text.substr(asyncHeader.size());
    Trace back;
    std::string err;
    EXPECT_FALSE(readTraceFromString(looperText, back, err));
    EXPECT_NE(err.find("unknown op kind"), std::string::npos) << err;
}

TEST(AsyncDialect, TextGarbageOpKindRejected)
{
    std::string text = writeTraceToString(tinyAsync());
    std::size_t pos = text.find("op spawn");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 8, "op sporn");
    Trace back;
    std::string err;
    EXPECT_FALSE(readTraceFromString(text, back, err));
    EXPECT_FALSE(err.empty());
}

// ---------------------------------------------------------------
// Protocol validation: each async rule, violated on purpose.
// ---------------------------------------------------------------

TEST(AsyncProtocol, ValidTraceValidates)
{
    EXPECT_EQ(tinyAsync().validate(true), "");
    EXPECT_EQ(tinyAsyncWithCancel().validate(true), "");
}

TEST(AsyncProtocol, BeginWithoutSpawnRejected)
{
    Trace tr;
    tr.setDialect(Dialect::Async);
    ThreadId main = tr.addThread(ThreadKind::Worker, "main");
    ThreadId exec = tr.addThread(ThreadKind::Worker, "exec");
    EventId t = tr.addEvent();
    tr.threadBegin(main, 0);
    tr.threadBegin(exec, 0);
    tr.eventBegin(t, exec, 1);
    tr.eventEnd(t, 2);
    tr.threadEnd(main, 3);
    tr.threadEnd(exec, 3);
    EXPECT_NE(tr.validate(true), "");
}

TEST(AsyncProtocol, AwaitBeforeSettleRejected)
{
    Trace tr;
    tr.setDialect(Dialect::Async);
    ThreadId main = tr.addThread(ThreadKind::Worker, "main");
    ThreadId exec = tr.addThread(ThreadKind::Worker, "exec");
    EventId t = tr.addEvent();
    Task m = Task::thread(main);
    tr.threadBegin(main, 0);
    tr.threadBegin(exec, 0);
    tr.taskSpawn(m, t, kInvalidId, 1);
    tr.eventBegin(t, exec, 2);
    tr.taskAwait(m, t, 3);  // task is still running
    tr.eventEnd(t, 4);
    tr.threadEnd(main, 5);
    tr.threadEnd(exec, 5);
    EXPECT_NE(tr.validate(true), "");
}

TEST(AsyncProtocol, CancelOfRunningTaskRejected)
{
    Trace tr;
    tr.setDialect(Dialect::Async);
    ThreadId main = tr.addThread(ThreadKind::Worker, "main");
    ThreadId exec = tr.addThread(ThreadKind::Worker, "exec");
    EventId t = tr.addEvent();
    Task m = Task::thread(main);
    tr.threadBegin(main, 0);
    tr.threadBegin(exec, 0);
    tr.taskSpawn(m, t, kInvalidId, 1);
    tr.eventBegin(t, exec, 2);
    tr.taskCancel(m, t, 3);  // too late: only NotStarted may cancel
    tr.eventEnd(t, 4);
    tr.threadEnd(main, 5);
    tr.threadEnd(exec, 5);
    EXPECT_NE(tr.validate(true), "");
}

TEST(AsyncProtocol, CancelledTaskMustNeverBegin)
{
    Trace tr;
    tr.setDialect(Dialect::Async);
    ThreadId main = tr.addThread(ThreadKind::Worker, "main");
    ThreadId exec = tr.addThread(ThreadKind::Worker, "exec");
    EventId t = tr.addEvent();
    Task m = Task::thread(main);
    tr.threadBegin(main, 0);
    tr.threadBegin(exec, 0);
    tr.taskSpawn(m, t, kInvalidId, 1);
    tr.taskCancel(m, t, 2);
    tr.eventBegin(t, exec, 3);  // zombie
    tr.eventEnd(t, 4);
    tr.threadEnd(main, 5);
    tr.threadEnd(exec, 5);
    EXPECT_NE(tr.validate(true), "");
}

TEST(AsyncProtocol, DoubleSpawnRejected)
{
    Trace tr;
    tr.setDialect(Dialect::Async);
    ThreadId main = tr.addThread(ThreadKind::Worker, "main");
    EventId t = tr.addEvent();
    Task m = Task::thread(main);
    tr.threadBegin(main, 0);
    tr.taskSpawn(m, t, kInvalidId, 1);
    tr.taskSpawn(m, t, kInvalidId, 2);
    tr.threadEnd(main, 3);
    EXPECT_NE(tr.validate(true), "");
}

TEST(AsyncProtocol, ScopeEndWithOpenChildRejected)
{
    Trace tr;
    tr.setDialect(Dialect::Async);
    ThreadId main = tr.addThread(ThreadKind::Worker, "main");
    ThreadId exec = tr.addThread(ThreadKind::Worker, "exec");
    EventId t = tr.addEvent();
    HandleId scope = tr.addHandle("main.scope");
    Task m = Task::thread(main);
    tr.threadBegin(main, 0);
    tr.threadBegin(exec, 0);
    tr.taskSpawn(m, t, scope, 1);
    tr.scopeEnd(m, scope, 2);  // t has not settled
    tr.eventBegin(t, exec, 3);
    tr.eventEnd(t, 4);
    tr.threadEnd(main, 5);
    tr.threadEnd(exec, 5);
    EXPECT_NE(tr.validate(true), "");
}

TEST(AsyncProtocol, LooperOpsRejectedInAsyncTrace)
{
    Trace tr;
    tr.setDialect(Dialect::Async);
    QueueId q = tr.addQueue(QueueKind::Looper, "q");
    ThreadId main = tr.addThread(ThreadKind::Worker, "main");
    EventId t = tr.addEvent();
    Task m = Task::thread(main);
    tr.threadBegin(main, 0);
    tr.send(m, q, t, SendAttrs{}, 1);
    tr.threadEnd(main, 2);
    std::string problem = tr.validate(true);
    EXPECT_NE(problem.find("looper-dialect op in async trace"),
              std::string::npos)
        << problem;
}

TEST(AsyncProtocol, NonMonotonicVtimeRejected)
{
    Trace tr = tinyAsync();
    Trace bad;
    std::string err;
    // Rebuild with a vtime regression via text surgery: the simplest
    // way to mutate one op without rebuilding the whole trace.
    std::string text = writeTraceToString(tr);
    std::size_t pos = text.rfind("@8");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 2, "@1");
    ASSERT_TRUE(readTraceFromString(text, bad, err)) << err;
    EXPECT_NE(bad.validate(true), "");
}

} // namespace
} // namespace asyncclock::trace
