# Golden differential driver: the looper report must not drift.
#
# Runs trace_analyzer over the checked-in golden trace under one clock
# backend and requires the text report (including --verify verdict
# lines) and the JSON report to be BYTE-IDENTICAL to the pre-refactor
# goldens in tests/golden/. This is the contract the model/mechanism
# split makes: extracting LooperModel out of the detector must not
# change a single byte of looper output.
#
# Usage (from add_test):
#   cmake -DGOLDEN_ANALYZER=<trace_analyzer> -DGOLDEN_TRACE=<in.actb>
#         -DGOLDEN_BACKEND=<sparse|cow|tree> -DGOLDEN_DIR=<tests/golden>
#         -DGOLDEN_WORK=<scratch dir> -P run_golden.cmake

foreach(v GOLDEN_ANALYZER GOLDEN_TRACE GOLDEN_BACKEND GOLDEN_DIR
          GOLDEN_WORK)
    if(NOT DEFINED ${v})
        message(FATAL_ERROR "run_golden.cmake requires -D${v}")
    endif()
endforeach()

file(MAKE_DIRECTORY "${GOLDEN_WORK}")
set(text_out "${GOLDEN_WORK}/k9mail_${GOLDEN_BACKEND}.txt")
set(json_out "${GOLDEN_WORK}/k9mail_${GOLDEN_BACKEND}.json")

execute_process(
    COMMAND "${GOLDEN_ANALYZER}" analyze "${GOLDEN_TRACE}"
            --clock=${GOLDEN_BACKEND} --verify
            --report-out=${text_out}
    OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "analyze (text) exited with '${rc}'\n"
            "stdout:\n${out}\nstderr:\n${err}")
endif()

execute_process(
    COMMAND "${GOLDEN_ANALYZER}" analyze "${GOLDEN_TRACE}"
            --clock=${GOLDEN_BACKEND} --verify --json
            --report-out=${json_out}
    OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "analyze (json) exited with '${rc}'\n"
            "stdout:\n${out}\nstderr:\n${err}")
endif()

foreach(kind txt json)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
                "${GOLDEN_WORK}/k9mail_${GOLDEN_BACKEND}.${kind}"
                "${GOLDEN_DIR}/k9mail_${GOLDEN_BACKEND}.${kind}"
        RESULT_VARIABLE diff)
    if(NOT diff EQUAL 0)
        message(FATAL_ERROR
                "${kind} report drifted from the pre-refactor golden "
                "(clock=${GOLDEN_BACKEND}): compare "
                "${GOLDEN_WORK}/k9mail_${GOLDEN_BACKEND}.${kind} "
                "against "
                "${GOLDEN_DIR}/k9mail_${GOLDEN_BACKEND}.${kind}")
    endif()
endforeach()
