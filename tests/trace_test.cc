/**
 * @file
 * Unit tests for the trace model: priority function (Table 1), trace
 * building, validation, statistics, and serialization round-trips.
 */

#include <gtest/gtest.h>

#include "trace/trace.hh"
#include "trace/trace_io.hh"

namespace asyncclock::trace {
namespace {

SendAttrs
attrs(SendKind kind, bool async, std::uint64_t time = 0)
{
    return SendAttrs{kind, async, time};
}

// ---------------------------------------------------------------
// Table 1: the priority function, cell by cell.
// ---------------------------------------------------------------

TEST(Priority, DelayedAsyncRow)
{
    auto da1 = attrs(SendKind::Delayed, true, 10);
    EXPECT_TRUE(priorityOrders(da1, attrs(SendKind::Delayed, true, 10)));
    EXPECT_TRUE(priorityOrders(da1, attrs(SendKind::Delayed, true, 11)));
    EXPECT_FALSE(priorityOrders(da1, attrs(SendKind::Delayed, true, 9)));
    EXPECT_TRUE(priorityOrders(da1, attrs(SendKind::Delayed, false, 10)));
    EXPECT_FALSE(priorityOrders(da1, attrs(SendKind::AtTime, true, 99)));
    EXPECT_FALSE(priorityOrders(da1, attrs(SendKind::AtTime, false, 99)));
    EXPECT_FALSE(priorityOrders(da1, attrs(SendKind::AtFront, true)));
    EXPECT_FALSE(priorityOrders(da1, attrs(SendKind::AtFront, false)));
}

TEST(Priority, DelayedSyncRow)
{
    auto ds = attrs(SendKind::Delayed, false, 10);
    // Sync never precedes Async.
    EXPECT_FALSE(priorityOrders(ds, attrs(SendKind::Delayed, true, 20)));
    EXPECT_TRUE(priorityOrders(ds, attrs(SendKind::Delayed, false, 10)));
    EXPECT_FALSE(priorityOrders(ds, attrs(SendKind::Delayed, false, 9)));
    EXPECT_FALSE(priorityOrders(ds, attrs(SendKind::AtTime, false, 99)));
    EXPECT_FALSE(priorityOrders(ds, attrs(SendKind::AtFront, false)));
}

TEST(Priority, AtTimeRows)
{
    auto ta = attrs(SendKind::AtTime, true, 5);
    auto ts = attrs(SendKind::AtTime, false, 5);
    EXPECT_TRUE(priorityOrders(ta, attrs(SendKind::AtTime, true, 6)));
    EXPECT_TRUE(priorityOrders(ta, attrs(SendKind::AtTime, false, 5)));
    EXPECT_FALSE(priorityOrders(ta, attrs(SendKind::Delayed, true, 6)));
    EXPECT_FALSE(priorityOrders(ts, attrs(SendKind::AtTime, true, 9)));
    EXPECT_TRUE(priorityOrders(ts, attrs(SendKind::AtTime, false, 9)));
    EXPECT_FALSE(priorityOrders(ts, attrs(SendKind::AtTime, false, 4)));
}

TEST(Priority, AtFrontRows)
{
    auto fa = attrs(SendKind::AtFront, true);
    auto fs = attrs(SendKind::AtFront, false);
    // AtFront+Async precedes every non-AtFront event.
    EXPECT_TRUE(priorityOrders(fa, attrs(SendKind::Delayed, true, 0)));
    EXPECT_TRUE(priorityOrders(fa, attrs(SendKind::Delayed, false, 0)));
    EXPECT_TRUE(priorityOrders(fa, attrs(SendKind::AtTime, true, 0)));
    EXPECT_TRUE(priorityOrders(fa, attrs(SendKind::AtTime, false, 0)));
    EXPECT_FALSE(priorityOrders(fa, fa));
    EXPECT_FALSE(priorityOrders(fa, fs));
    // AtFront+Sync precedes only Sync events.
    EXPECT_FALSE(priorityOrders(fs, attrs(SendKind::Delayed, true, 0)));
    EXPECT_TRUE(priorityOrders(fs, attrs(SendKind::Delayed, false, 0)));
    EXPECT_FALSE(priorityOrders(fs, attrs(SendKind::AtTime, true, 0)));
    EXPECT_TRUE(priorityOrders(fs, attrs(SendKind::AtTime, false, 0)));
    EXPECT_FALSE(priorityOrders(fs, fa));
    EXPECT_FALSE(priorityOrders(fs, fs));
}

TEST(Priority, ClassIndexCoversAllSix)
{
    EXPECT_EQ(priorityClass(attrs(SendKind::Delayed, true)), 0u);
    EXPECT_EQ(priorityClass(attrs(SendKind::Delayed, false)), 1u);
    EXPECT_EQ(priorityClass(attrs(SendKind::AtTime, true)), 2u);
    EXPECT_EQ(priorityClass(attrs(SendKind::AtTime, false)), 3u);
    EXPECT_EQ(priorityClass(attrs(SendKind::AtFront, true)), 4u);
    EXPECT_EQ(priorityClass(attrs(SendKind::AtFront, false)), 5u);
}

// ---------------------------------------------------------------
// Trace building and validation.
// ---------------------------------------------------------------

/** A minimal valid trace: a worker sends two FIFO events to a looper;
 * both run; the worker and looper exit. */
Trace
makeSmallTrace()
{
    Trace tr;
    QueueId q = tr.addQueue(QueueKind::Looper, "main");
    ThreadId looper = tr.addThread(ThreadKind::Looper, "main", q);
    tr.bindLooper(q, looper);
    ThreadId worker = tr.addThread(ThreadKind::Worker, "w0");
    VarId x = tr.addVar("x");
    SiteId s = tr.addSite("App.java:1", Frame::User);
    EventId e1 = tr.addEvent();
    EventId e2 = tr.addEvent();

    std::uint64_t t = 0;
    tr.threadBegin(looper, t++);
    tr.threadBegin(worker, t++);
    tr.send(Task::thread(worker), q, e1, SendAttrs{}, t++);
    tr.write(Task::thread(worker), x, s, t++);
    tr.send(Task::thread(worker), q, e2, SendAttrs{}, t++);
    tr.eventBegin(e1, looper, t++);
    tr.read(Task::event(e1), x, s, t++);
    tr.eventEnd(e1, t++);
    tr.eventBegin(e2, looper, t++);
    tr.eventEnd(e2, t++);
    tr.threadEnd(worker, t++);
    tr.threadEnd(looper, t++);
    return tr;
}

TEST(Trace, SmallTraceValidates)
{
    Trace tr = makeSmallTrace();
    EXPECT_EQ(tr.validate(), "");
}

TEST(Trace, CrossLinksFilled)
{
    Trace tr = makeSmallTrace();
    const EventInfo &e1 = tr.event(0);
    EXPECT_EQ(e1.queue, 0u);
    EXPECT_EQ(e1.sender, Task::thread(1));
    EXPECT_EQ(e1.executor, 0u);
    EXPECT_EQ(tr.op(e1.sendOp).kind, OpKind::Send);
    EXPECT_EQ(tr.op(e1.beginOp).kind, OpKind::EventBegin);
    EXPECT_EQ(tr.op(e1.endOp).kind, OpKind::EventEnd);
    EXPECT_EQ(e1.removeOp, kInvalidId);
    EXPECT_EQ(tr.looperOf(0), 0u);
}

TEST(Trace, StatsCountsKinds)
{
    Trace tr = makeSmallTrace();
    TraceStats s = tr.stats();
    EXPECT_EQ(s.ops, 12u);
    EXPECT_EQ(s.syncOps, 2u);
    EXPECT_EQ(s.memOps, 2u);
    EXPECT_EQ(s.looperThreads, 1u);
    EXPECT_EQ(s.workerThreads, 1u);
    EXPECT_EQ(s.looperEvents, 2u);
    EXPECT_EQ(s.binderEvents, 0u);
}

TEST(TraceValidate, RejectsOpsOutsideLifetime)
{
    Trace tr;
    ThreadId w = tr.addThread(ThreadKind::Worker, "w");
    VarId x = tr.addVar("x");
    tr.read(Task::thread(w), x, kInvalidId, 0);  // before begin
    EXPECT_NE(tr.validate(), "");
}

TEST(TraceValidate, RejectsUnsentEventBegin)
{
    Trace tr;
    QueueId q = tr.addQueue(QueueKind::Looper, "main");
    ThreadId looper = tr.addThread(ThreadKind::Looper, "main", q);
    tr.bindLooper(q, looper);
    EventId e = tr.addEvent();
    tr.threadBegin(looper, 0);
    tr.eventBegin(e, looper, 1);
    EXPECT_NE(tr.validate(), "");
}

TEST(TraceValidate, RejectsOverlappingLooperEvents)
{
    Trace tr;
    QueueId q = tr.addQueue(QueueKind::Looper, "main");
    ThreadId looper = tr.addThread(ThreadKind::Looper, "main", q);
    tr.bindLooper(q, looper);
    ThreadId w = tr.addThread(ThreadKind::Worker, "w");
    EventId e1 = tr.addEvent(), e2 = tr.addEvent();
    tr.threadBegin(looper, 0);
    tr.threadBegin(w, 0);
    tr.send(Task::thread(w), q, e1, SendAttrs{}, 1);
    tr.send(Task::thread(w), q, e2, SendAttrs{}, 2);
    tr.eventBegin(e1, looper, 3);
    tr.eventBegin(e2, looper, 4);  // e1 still running
    EXPECT_NE(tr.validate(), "");
}

TEST(TraceValidate, RejectsWaitWithoutSignal)
{
    Trace tr;
    ThreadId w = tr.addThread(ThreadKind::Worker, "w");
    HandleId h = tr.addHandle("m");
    tr.threadBegin(w, 0);
    tr.wait(Task::thread(w), h, 1);
    EXPECT_NE(tr.validate(), "");
}

TEST(TraceValidate, RejectsJoinBeforeChildEnd)
{
    Trace tr;
    ThreadId a = tr.addThread(ThreadKind::Worker, "a");
    ThreadId b = tr.addThread(ThreadKind::Worker, "b");
    tr.threadBegin(a, 0);
    tr.fork(Task::thread(a), b, 1);
    tr.threadBegin(b, 2);
    tr.join(Task::thread(a), b, 3);  // b has not ended
    EXPECT_NE(tr.validate(), "");
}

TEST(TraceValidate, RejectsPriorityInversion)
{
    Trace tr;
    QueueId q = tr.addQueue(QueueKind::Looper, "main");
    ThreadId looper = tr.addThread(ThreadKind::Looper, "main", q);
    tr.bindLooper(q, looper);
    ThreadId w = tr.addThread(ThreadKind::Worker, "w");
    EventId e1 = tr.addEvent(), e2 = tr.addEvent();
    tr.threadBegin(looper, 0);
    tr.threadBegin(w, 0);
    // Two plain FIFO events dispatched in reverse order.
    tr.send(Task::thread(w), q, e1, SendAttrs{}, 1);
    tr.send(Task::thread(w), q, e2, SendAttrs{}, 2);
    tr.eventBegin(e2, looper, 3);
    tr.eventEnd(e2, 4);
    tr.eventBegin(e1, looper, 5);
    tr.eventEnd(e1, 6);
    EXPECT_NE(tr.validate(), "");
}

TEST(TraceValidate, RejectsDecreasingVtime)
{
    Trace tr;
    ThreadId w = tr.addThread(ThreadKind::Worker, "w");
    tr.threadBegin(w, 10);
    tr.threadEnd(w, 5);
    EXPECT_NE(tr.validate(), "");
}

TEST(TraceValidate, RemovedEventMustNotRun)
{
    Trace tr;
    QueueId q = tr.addQueue(QueueKind::Looper, "main");
    ThreadId looper = tr.addThread(ThreadKind::Looper, "main", q);
    tr.bindLooper(q, looper);
    ThreadId w = tr.addThread(ThreadKind::Worker, "w");
    EventId e = tr.addEvent();
    tr.threadBegin(looper, 0);
    tr.threadBegin(w, 0);
    tr.send(Task::thread(w), q, e, SendAttrs{}, 1);
    tr.removeEvent(Task::thread(w), e, 2);
    tr.eventBegin(e, looper, 3);
    EXPECT_NE(tr.validate(), "");
}

TEST(TraceValidate, AcceptsRemovedEvent)
{
    Trace tr;
    QueueId q = tr.addQueue(QueueKind::Looper, "main");
    ThreadId looper = tr.addThread(ThreadKind::Looper, "main", q);
    tr.bindLooper(q, looper);
    ThreadId w = tr.addThread(ThreadKind::Worker, "w");
    EventId e = tr.addEvent();
    tr.threadBegin(looper, 0);
    tr.threadBegin(w, 0);
    tr.send(Task::thread(w), q, e, SendAttrs{}, 1);
    tr.removeEvent(Task::thread(w), e, 2);
    tr.threadEnd(w, 3);
    tr.threadEnd(looper, 4);
    EXPECT_EQ(tr.validate(), "");
    EXPECT_EQ(tr.stats().removedEvents, 1u);
}

// ---------------------------------------------------------------
// Serialization.
// ---------------------------------------------------------------

TEST(TraceIo, RoundTripPreservesEverything)
{
    Trace tr = makeSmallTrace();
    std::string text = writeTraceToString(tr);
    Trace back;
    std::string error;
    ASSERT_TRUE(readTraceFromString(text, back, error)) << error;
    EXPECT_EQ(back.validate(), "");
    EXPECT_EQ(writeTraceToString(back), text);
    EXPECT_EQ(back.numOps(), tr.numOps());
    EXPECT_EQ(back.threads().size(), tr.threads().size());
    EXPECT_EQ(back.events().size(), tr.events().size());
}

TEST(TraceIo, RoundTripSendAttrs)
{
    Trace tr;
    QueueId q = tr.addQueue(QueueKind::Looper, "main");
    ThreadId looper = tr.addThread(ThreadKind::Looper, "main", q);
    tr.bindLooper(q, looper);
    ThreadId w = tr.addThread(ThreadKind::Worker, "w");
    EventId e1 = tr.addEvent(), e2 = tr.addEvent(), e3 = tr.addEvent();
    tr.threadBegin(looper, 0);
    tr.threadBegin(w, 0);
    tr.send(Task::thread(w), q, e1,
            SendAttrs{SendKind::Delayed, true, 123}, 1);
    tr.send(Task::thread(w), q, e2,
            SendAttrs{SendKind::AtTime, false, 456}, 2);
    tr.send(Task::thread(w), q, e3,
            SendAttrs{SendKind::AtFront, true, 0}, 3);

    std::string text = writeTraceToString(tr);
    Trace back;
    std::string error;
    ASSERT_TRUE(readTraceFromString(text, back, error)) << error;
    EXPECT_EQ(back.event(0).attrs,
              (SendAttrs{SendKind::Delayed, true, 123}));
    EXPECT_EQ(back.event(1).attrs,
              (SendAttrs{SendKind::AtTime, false, 456}));
    EXPECT_EQ(back.event(2).attrs,
              (SendAttrs{SendKind::AtFront, true, 0}));
}

TEST(TraceIo, RejectsGarbage)
{
    Trace tr;
    std::string error;
    EXPECT_FALSE(readTraceFromString("not a trace", tr, error));
    EXPECT_FALSE(readTraceFromString(
        "asyncclock-trace v1\nbogus line here\n", tr, error));
    EXPECT_FALSE(error.empty());
}

TEST(TraceIo, SeedLabelsSurvive)
{
    Trace tr;
    tr.addVar("racy", SeedLabel::Harmful);
    tr.addVar("benign", SeedLabel::HarmlessTypeII);
    std::string text = writeTraceToString(tr);
    Trace back;
    std::string error;
    ASSERT_TRUE(readTraceFromString(text, back, error)) << error;
    EXPECT_EQ(back.var(0).seedLabel, SeedLabel::Harmful);
    EXPECT_EQ(back.var(1).seedLabel, SeedLabel::HarmlessTypeII);
}

TEST(Task, Packing)
{
    Task t = Task::thread(5);
    Task e = Task::event(5);
    EXPECT_FALSE(t.isEvent());
    EXPECT_TRUE(e.isEvent());
    EXPECT_EQ(t.index(), 5u);
    EXPECT_EQ(e.index(), 5u);
    EXPECT_NE(t.raw(), e.raw());
    EXPECT_EQ(t, Task::thread(5));
}

} // namespace
} // namespace asyncclock::trace
