/**
 * @file
 * Fault-injection matrix: the checking pipeline must survive every
 * injectable fault class without crashing, hanging, or inventing
 * results. Byte-level damage (truncation, bit flips, short reads)
 * either skips-and-counts within the error budget or ends the run
 * with a structured, offset-carrying status; op-level damage (dups,
 * reorders, drops) is absorbed by the detector's protocol gate up to
 * its budget, then fails structurally; shard-level damage (poisoned
 * worker, stalled worker) trips the sharded checker's watchdog
 * machinery instead of wedging the run.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/detector.hh"
#include "predict/candidates.hh"
#include "predict/shb.hh"
#include "report/fasttrack.hh"
#include "report/sharded.hh"
#include "trace/fault.hh"
#include "trace/trace_io.hh"
#include "workload/workload.hh"

namespace asyncclock {
namespace {

using trace::FaultConfig;
using trace::FaultInjectingSource;
using trace::FaultyStreamBuf;
using trace::Operation;
using trace::Trace;

workload::AppProfile
profile(std::uint64_t seed, unsigned events)
{
    workload::AppProfile p;
    p.seed = seed;
    p.looperEvents = events;
    return p;
}

// ----- spec parsing ---------------------------------------------------

TEST(FaultSpec, ParsesEveryKey)
{
    auto parsed = trace::parseFaultSpec(
        "seed=7,truncate=100,flip=0.5,shortread=0.25,stall=10@4096,"
        "dup=0.01,reorder=0.02,drop=0.03,shard-stall=1:50,poison=2");
    ASSERT_TRUE(parsed);
    const FaultConfig &cfg = parsed.value();
    EXPECT_EQ(cfg.seed, 7u);
    EXPECT_EQ(cfg.truncateAfterBytes, 100u);
    EXPECT_DOUBLE_EQ(cfg.bitFlipRate, 0.5);
    EXPECT_DOUBLE_EQ(cfg.shortReadRate, 0.25);
    EXPECT_EQ(cfg.stallMicros, 10u);
    EXPECT_EQ(cfg.stallEveryBytes, 4096u);
    EXPECT_DOUBLE_EQ(cfg.dupRate, 0.01);
    EXPECT_DOUBLE_EQ(cfg.reorderRate, 0.02);
    EXPECT_DOUBLE_EQ(cfg.dropRate, 0.03);
    EXPECT_EQ(cfg.stallShard, 1u);
    EXPECT_EQ(cfg.shardStallMs, 50u);
    EXPECT_EQ(cfg.poisonShard, 2u);
    EXPECT_TRUE(cfg.anyByteFaults());
    EXPECT_TRUE(cfg.anyOpFaults());
}

TEST(FaultSpec, ParsesSessionLevelKeys)
{
    auto parsed = trace::parseFaultSpec(
        "sess-disconnect=3,sess-dup=5,sess-interleave=2");
    ASSERT_TRUE(parsed);
    const FaultConfig &cfg = parsed.value();
    EXPECT_EQ(cfg.sessDisconnectAtChunk, 3u);
    EXPECT_EQ(cfg.sessDupCreateAt, 5u);
    EXPECT_EQ(cfg.sessInterleaveAtChunk, 2u);
    EXPECT_TRUE(cfg.anySessionFaults());
    // Session faults live in the client; the stream/op layers stay
    // clean.
    EXPECT_FALSE(cfg.anyByteFaults());
    EXPECT_FALSE(cfg.anyOpFaults());

    auto empty = trace::parseFaultSpec("seed=3");
    ASSERT_TRUE(empty);
    EXPECT_FALSE(empty.value().anySessionFaults());
}

TEST(FaultSpec, RejectsMalformedSpecs)
{
    EXPECT_FALSE(trace::parseFaultSpec("flip"));
    EXPECT_FALSE(trace::parseFaultSpec("flip=2.0"));   // rate > 1
    EXPECT_FALSE(trace::parseFaultSpec("flip=abc"));
    EXPECT_FALSE(trace::parseFaultSpec("unknown=1"));
    EXPECT_FALSE(trace::parseFaultSpec("stall=10"));   // missing @
    EXPECT_FALSE(trace::parseFaultSpec("shard-stall=1")); // missing :
    auto empty = trace::parseFaultSpec("");
    ASSERT_TRUE(empty);
    EXPECT_FALSE(empty.value().anyByteFaults());
    EXPECT_FALSE(empty.value().anyOpFaults());
}

// ----- byte level -----------------------------------------------------

TEST(FaultyStream, TruncatesAtExactOffset)
{
    std::string data(10000, 'x');
    std::istringstream under(data);
    FaultConfig cfg;
    cfg.truncateAfterBytes = 1234;
    FaultyStreamBuf buf(under, cfg);
    std::istream in(&buf);
    std::string out((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    EXPECT_EQ(out.size(), 1234u);
    EXPECT_EQ(buf.bytesDelivered(), 1234u);
}

TEST(FaultyStream, TellgTracksFaultedPosition)
{
    std::string data(5000, 'y');
    std::istringstream under(data);
    FaultConfig cfg;
    cfg.shortReadRate = 0.5;  // exercise partial refills
    FaultyStreamBuf buf(under, cfg);
    std::istream in(&buf);
    char sink[701];
    in.read(sink, sizeof(sink));
    ASSERT_EQ(in.gcount(), static_cast<std::streamsize>(sizeof(sink)));
    EXPECT_EQ(static_cast<std::uint64_t>(in.tellg()), sizeof(sink));
}

TEST(FaultyStream, BitFlipsAreSeedDeterministic)
{
    std::string data(4096, '\0');
    auto corrupt = [&](std::uint64_t seed) {
        std::istringstream under(data);
        FaultConfig cfg;
        cfg.seed = seed;
        cfg.bitFlipRate = 0.01;
        FaultyStreamBuf buf(under, cfg);
        std::istream in(&buf);
        std::string out((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
        EXPECT_GT(buf.bitsFlipped(), 0u);
        return out;
    };
    std::string a = corrupt(3);
    std::string b = corrupt(3);
    std::string c = corrupt(4);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_NE(a, data);
}

// ----- op level -------------------------------------------------------

TEST(FaultInjection, OpFaultsAreSeedDeterministic)
{
    auto app = workload::generateApp(profile(11, 80));
    std::string bin = trace::writeBinaryTraceToString(app.trace);
    FaultConfig cfg;
    cfg.seed = 9;
    cfg.dupRate = 0.05;
    cfg.reorderRate = 0.05;
    cfg.dropRate = 0.05;
    auto deliver = [&] {
        std::istringstream in(bin);
        trace::StreamingBinarySource inner(in);
        FaultInjectingSource src(inner, cfg);
        std::vector<std::pair<int, std::uint64_t>> ops;
        Operation op;
        while (src.next(op))
            ops.emplace_back(static_cast<int>(op.kind), op.vtime);
        EXPECT_GT(src.opsDuplicated() + src.opsReordered() +
                      src.opsDropped(),
                  0u);
        return ops;
    };
    EXPECT_EQ(deliver(), deliver());
}

TEST(FaultInjection, ProtocolGateSkipsAndCountsWithinBudget)
{
    auto app = workload::generateApp(profile(21, 80));
    std::string bin = trace::writeBinaryTraceToString(app.trace);
    std::istringstream in(bin);
    trace::StreamingBinarySource inner(in);
    FaultConfig cfg;
    cfg.dupRate = 0.02;  // duplicates alone: each is one dropped op
    FaultInjectingSource src(inner, cfg);

    report::FastTrackChecker checker;
    core::DetectorConfig dcfg;
    dcfg.maxInvalidOps = 1u << 30;  // effectively unbounded
    core::AsyncClockDetector det(src, checker, dcfg);
    det.runAll();
    EXPECT_TRUE(det.runStatus().isOk()) << det.runStatus().toString();
    EXPECT_GT(det.counters().invalidOpsDropped, 0u);
}

TEST(FaultInjection, BudgetExhaustionIsStructuredAndTerminal)
{
    auto app = workload::generateApp(profile(31, 120));
    std::string bin = trace::writeBinaryTraceToString(app.trace);
    std::istringstream in(bin);
    trace::StreamingBinarySource inner(in);
    FaultConfig cfg;
    cfg.dropRate = 0.2;  // scrambles causality fast
    FaultInjectingSource src(inner, cfg);

    report::FastTrackChecker checker;
    core::DetectorConfig dcfg;
    dcfg.maxInvalidOps = 16;
    core::AsyncClockDetector det(src, checker, dcfg);
    det.runAll();
    ASSERT_FALSE(det.runStatus().isOk());
    EXPECT_EQ(det.runStatus().code(), ErrCode::BudgetExceeded);
    // Failed runs stay failed: the pump refuses further work.
    EXPECT_FALSE(det.processNext());
}

// ----- corruption corpus ----------------------------------------------

/**
 * The corpus invariant: for every (seed, fault) pair the pipeline
 * terminates with either a clean report, a decoder skip-and-count
 * within budget, or a structured error from exactly one layer — and
 * never emits a race whose ids fall outside the trace's entity
 * tables (a "phantom" that a downstream consumer would chase).
 */
TEST(CorruptionCorpus, EveryOutcomeIsCleanSkippedOrStructured)
{
    auto app = workload::generateApp(profile(1, 100));
    std::string bin = trace::writeBinaryTraceToString(app.trace);

    struct Case
    {
        const char *name;
        FaultConfig cfg;
    };
    std::vector<Case> corpus;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        FaultConfig truncate;
        truncate.seed = seed;
        truncate.truncateAfterBytes = (bin.size() * seed) / 7;
        corpus.push_back({"truncate", truncate});
        FaultConfig flip;
        flip.seed = seed;
        flip.bitFlipRate = 2e-4;
        corpus.push_back({"flip", flip});
        FaultConfig shortRead;
        shortRead.seed = seed;
        shortRead.shortReadRate = 0.3;
        corpus.push_back({"shortread", shortRead});
        FaultConfig ops;
        ops.seed = seed;
        ops.dupRate = 0.01;
        ops.reorderRate = 0.01;
        ops.dropRate = 0.01;
        corpus.push_back({"ops", ops});
    }

    for (const Case &c : corpus) {
        SCOPED_TRACE(c.name);
        SCOPED_TRACE(c.cfg.seed);
        std::istringstream file(bin);
        FaultyStreamBuf buf(file, c.cfg);
        std::istream faulted(&buf);
        trace::SourceErrorPolicy policy;
        policy.maxRecordErrors = 50;
        trace::StreamingBinarySource inner(
            c.cfg.anyByteFaults() ? faulted : file, policy);
        std::unique_ptr<FaultInjectingSource> injector;
        trace::TraceSource *src = &inner;
        if (c.cfg.anyOpFaults()) {
            injector =
                std::make_unique<FaultInjectingSource>(inner, c.cfg);
            src = injector.get();
        }

        report::FastTrackChecker checker;
        core::AsyncClockDetector det(*src, checker);
        // Hang guard: the source is finite, so the pump must stop on
        // its own well before this ceiling.
        std::uint64_t pumped = 0;
        std::uint64_t ceiling = app.trace.numOps() * 4 + 1000;
        while (det.processNext()) {
            ASSERT_LT(++pumped, ceiling) << "pump did not terminate";
        }

        if (!src->ok()) {
            // Structured decoder failure: a real code and message.
            Status st = src->status();
            EXPECT_NE(st.code(), ErrCode::Ok);
            EXPECT_FALSE(st.message().empty());
        }
        if (!det.runStatus().isOk()) {
            EXPECT_EQ(det.runStatus().code(),
                      ErrCode::BudgetExceeded);
        }
        // No phantoms regardless of outcome.
        for (const report::RaceReport &r : checker.races()) {
            EXPECT_LT(r.var, app.trace.vars().size());
            EXPECT_LT(r.prevOp, pumped);
            EXPECT_LT(r.curOp, pumped);
        }
    }
}

TEST(CorruptionCorpus, CleanStreamThroughFaultLayersIsUnchanged)
{
    // All fault machinery installed, every rate zero: the pipeline
    // must behave exactly like the unwrapped one (the clean-path
    // contract behind the <2% overhead budget).
    auto app = workload::generateApp(profile(2, 80));
    std::string bin = trace::writeBinaryTraceToString(app.trace);

    report::FastTrackChecker plain;
    {
        std::istringstream in(bin);
        trace::StreamingBinarySource src(in);
        core::AsyncClockDetector det(src, plain);
        det.runAll();
        ASSERT_TRUE(src.ok());
    }

    std::istringstream file(bin);
    FaultConfig cfg;  // nothing enabled
    FaultyStreamBuf buf(file, cfg);
    std::istream faulted(&buf);
    trace::StreamingBinarySource inner(faulted);
    FaultInjectingSource src(inner, cfg);
    report::FastTrackChecker wrapped;
    core::AsyncClockDetector det(src, wrapped);
    det.runAll();
    ASSERT_TRUE(src.ok()) << src.error();
    ASSERT_TRUE(det.runStatus().isOk());

    ASSERT_EQ(plain.races().size(), wrapped.races().size());
    for (std::size_t i = 0; i < plain.races().size(); ++i) {
        EXPECT_EQ(plain.races()[i].prevOp, wrapped.races()[i].prevOp);
        EXPECT_EQ(plain.races()[i].curOp, wrapped.races()[i].curOp);
        EXPECT_EQ(plain.races()[i].var, wrapped.races()[i].var);
    }
}

/**
 * The predictive tier's leg of the corpus invariant: feeding the
 * weakened-ordering pass from a decode-damaged stream must never
 * yield a *phantom* candidate — one whose variable, sites, or op ids
 * fall outside the trace's tables / the ops actually pumped. Damaged
 * ops are either absorbed (in-range ids, wrong but harmless) or
 * counted by ShbEngine::malformedDropped(), never applied.
 */
TEST(CorruptionCorpus, PredictSeesNoPhantomCandidates)
{
    auto app = workload::generateApp(profile(3, 100));
    std::string bin = trace::writeBinaryTraceToString(app.trace);

    struct Case
    {
        const char *name;
        FaultConfig cfg;
    };
    std::vector<Case> corpus;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        FaultConfig flip;
        flip.seed = seed;
        flip.bitFlipRate = 2e-4;
        corpus.push_back({"flip", flip});
        FaultConfig truncate;
        truncate.seed = seed;
        truncate.truncateAfterBytes = (bin.size() * seed) / 7;
        corpus.push_back({"truncate", truncate});
        FaultConfig ops;
        ops.seed = seed;
        ops.dupRate = 0.01;
        ops.reorderRate = 0.01;
        ops.dropRate = 0.01;
        corpus.push_back({"ops", ops});
    }

    for (const Case &c : corpus) {
        SCOPED_TRACE(c.name);
        SCOPED_TRACE(c.cfg.seed);
        std::istringstream file(bin);
        FaultyStreamBuf buf(file, c.cfg);
        std::istream faulted(&buf);
        trace::SourceErrorPolicy policy;
        policy.maxRecordErrors = 50;
        trace::StreamingBinarySource inner(
            c.cfg.anyByteFaults() ? faulted : file, policy);
        std::unique_ptr<FaultInjectingSource> injector;
        trace::TraceSource *src = &inner;
        if (c.cfg.anyOpFaults()) {
            injector =
                std::make_unique<FaultInjectingSource>(inner, c.cfg);
            src = injector.get();
        }

        // The engine binds the clean entity tables; whatever survives
        // decoding is stepped through it, like the analyzer would
        // after a damaged streaming run.
        predict::ShbEngine eng(app.trace);
        predict::CandidateWindow window;
        Operation op;
        trace::OpId pumped = 0;
        std::uint64_t ceiling = app.trace.numOps() * 4 + 1000;
        while (src->next(op)) {
            eng.step(op, pumped++, window);
            ASSERT_LT(pumped, ceiling) << "pump did not terminate";
        }
        if (!src->ok()) {
            Status st = src->status();
            EXPECT_NE(st.code(), ErrCode::Ok);
        }

        for (const report::RaceReport &r : window.races()) {
            EXPECT_LT(r.var, app.trace.vars().size());
            EXPECT_LT(r.prevSite, app.trace.sites().size());
            EXPECT_LT(r.curSite, app.trace.sites().size());
            EXPECT_LT(r.prevOp, pumped);
            EXPECT_LT(r.curOp, pumped);
        }
    }

    // Clean stream through the same plumbing: candidate list must be
    // identical to a direct in-memory run (no drift from the layers).
    predict::CandidateWindow direct;
    predict::ShbEngine(app.trace).run(direct);

    std::istringstream file(bin);
    trace::StreamingBinarySource src(file);
    predict::ShbEngine eng(app.trace);
    predict::CandidateWindow streamed;
    Operation op;
    trace::OpId id = 0;
    while (src.next(op))
        eng.step(op, id++, streamed);
    ASSERT_TRUE(src.ok()) << src.error();
    EXPECT_EQ(eng.malformedDropped(), 0u);
    ASSERT_EQ(direct.races().size(), streamed.races().size());
    for (std::size_t i = 0; i < direct.races().size(); ++i) {
        EXPECT_EQ(direct.races()[i].prevOp, streamed.races()[i].prevOp);
        EXPECT_EQ(direct.races()[i].curOp, streamed.races()[i].curOp);
        EXPECT_EQ(direct.races()[i].var, streamed.races()[i].var);
    }
}

// ----- shard level ----------------------------------------------------

TEST(ShardFaults, PoisonedWorkerFailsRunWithDiagnostics)
{
    auto app = workload::generateApp(profile(3, 120));
    report::ShardedConfig scfg;
    scfg.shards = 2;
    scfg.batchOps = 4;  // flush often so the poison triggers early
    scfg.watchdogMs = 5000;
    scfg.faults.poisonShard = 0;
    report::ShardedChecker checker(scfg);
    core::AsyncClockDetector det(app.trace, checker);
    det.runAll();
    checker.drain();
    EXPECT_TRUE(checker.failed());
    EXPECT_NE(checker.failureMessage().find("poison"),
              std::string::npos)
        << checker.failureMessage();
}

TEST(ShardFaults, StalledWorkerTripsWatchdogInsteadOfHanging)
{
    auto app = workload::generateApp(profile(4, 120));
    report::ShardedConfig scfg;
    scfg.shards = 2;
    scfg.batchOps = 4;
    scfg.pushTimeoutMs = 10;
    scfg.watchdogMs = 200;
    scfg.faults.stallShard = 0;
    scfg.faults.stallMs = 60000;  // would hang for minutes unwatched
    report::ShardedChecker checker(scfg);
    core::AsyncClockDetector det(app.trace, checker);
    det.runAll();
    checker.drain();
    EXPECT_TRUE(checker.failed());
    EXPECT_NE(checker.failureMessage().find("watchdog"),
              std::string::npos)
        << checker.failureMessage();
}

TEST(ShardFaults, CleanShardedRunDoesNotTripWatchdog)
{
    auto app = workload::generateApp(profile(5, 120));
    report::ShardedConfig scfg;
    scfg.shards = 4;
    scfg.watchdogMs = 30000;
    report::ShardedChecker checker(scfg);
    core::AsyncClockDetector det(app.trace, checker);
    det.runAll();
    checker.drain();
    EXPECT_FALSE(checker.failed());
    EXPECT_TRUE(checker.failureMessage().empty());
}

} // namespace
} // namespace asyncclock
