/**
 * @file
 * The predictive race tier (src/predict/, DESIGN.md section 16):
 * the weakened gold closure, the ShbEngine's linear mirror of it
 * (cross-validated under all three clock backends), the seeded
 * HB-hidden-race patterns (prediction finds them, replay confirms
 * them, combined recall strictly beats observed recall), the
 * FIFO-forced soundness negative, candidate bounding with explicit
 * drop counters, and byte-identical predicted output across clock
 * backends.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "clock/hybrid_clock.hh"
#include "clock/tree_clock.hh"
#include "core/engine.hh"
#include "gold/closure.hh"
#include "predict/candidates.hh"
#include "predict/predict.hh"
#include "predict/shb.hh"
#include "report/checker.hh"
#include "trace/source.hh"
#include "workload/async_workload.hh"
#include "workload/workload.hh"

namespace asyncclock {
namespace {

using clock::Backend;
using core::DetectorEngine;
using core::ModelKind;
using gold::GoldRace;
using predict::PredictConfig;
using predict::PredictResult;
using report::RaceReport;
using report::ReplayVerdict;
using trace::OpId;

using PairSet = std::set<std::pair<OpId, OpId>>;

PairSet
racePairs(const std::vector<GoldRace> &races)
{
    PairSet out;
    for (const GoldRace &g : races)
        out.insert({g.first, g.second});
    return out;
}

PairSet
reportPairs(const std::vector<RaceReport> &races)
{
    PairSet out;
    for (const RaceReport &r : races)
        out.insert({r.prevOp, r.curOp});
    return out;
}

/** The HB detector's race list for @p tr (exact checker, no time
 * window), the way the predictive funnel consumes it. */
std::vector<RaceReport>
detectRaces(const trace::Trace &tr)
{
    report::ExactChecker checker;
    DetectorEngine eng(core::modelForDialect(tr.dialect()), tr,
                       checker, {});
    eng.runAll();
    EXPECT_TRUE(eng.runStatus().isOk());
    return checker.races();
}

gold::GoldConfig
weakConfigFor(const trace::Trace &tr)
{
    return predict::weakGoldConfig(core::weakOrderingFor(
        core::modelForDialect(tr.dialect())));
}

// ---------------------------------------------------------------
// The weakened gold closure: dropping the non-releasing signal
// edges and the queue rules exposes exactly the schedule-hidden
// pairs.
// ---------------------------------------------------------------

TEST(WeakClosure, FirstSignalOnlyGateWeakensOrdering)
{
    trace::Trace tr = workload::lockShadowedPattern();
    ASSERT_EQ(tr.validate(true), "");

    gold::Closure strong(tr);
    gold::Closure weak(tr, weakConfigFor(tr));

    // The observed schedule hides the write/write pair from HB...
    EXPECT_TRUE(strong.races().empty());
    // ...but the weak relation exposes it.
    ASSERT_EQ(weak.races().size(), 1u);

    // Weakening only removes order: every weak edge is also strong.
    const GoldRace race = weak.races()[0];
    EXPECT_TRUE(strong.happensBefore(race.first, race.second));
}

TEST(WeakClosure, WeakRacesAreASupersetOfStrongRaces)
{
    for (std::uint64_t seed : {11u, 23u, 47u}) {
        trace::Trace tr = workload::chaosTrace(seed, 60);
        ASSERT_EQ(tr.validate(true), "");
        gold::Closure strong(tr);
        gold::Closure weak(tr, weakConfigFor(tr));
        PairSet strongSet = racePairs(strong.races());
        PairSet weakSet = racePairs(weak.races());
        for (const auto &p : strongSet)
            EXPECT_TRUE(weakSet.count(p))
                << "seed " << seed << ": strong race " << p.first
                << "-" << p.second << " missing from weak set";
    }
}

// ---------------------------------------------------------------
// ShbEngine is the linear mirror of the weakened closure, under
// every clock backend.
// ---------------------------------------------------------------

class BackendGuard
{
  public:
    explicit BackendGuard(Backend b) : saved_(clock::defaultBackend())
    {
        clock::TreeClock::resetPruneGuard();
        clock::HybridClock::resetPruneGuard();
        clock::setDefaultBackend(b);
    }
    ~BackendGuard() { clock::setDefaultBackend(saved_); }

  private:
    Backend saved_;
};

constexpr Backend kBackends[] = {Backend::Sparse, Backend::Cow,
                                 Backend::Tree, Backend::Hybrid};

TEST(ShbEngine, MatchesWeakClosureOnEveryBackend)
{
    std::vector<trace::Trace> traces;
    traces.push_back(workload::lockShadowedPattern());
    traces.push_back(workload::queueSiblingsPattern());
    traces.push_back(workload::fifoForcedPattern());
    traces.push_back(workload::chaosTrace(11, 60));
    traces.push_back(workload::chaosTrace(23, 45));
    {
        workload::AppProfile p;
        p.seed = 7;
        p.looperEvents = 80;
        p.binderEvents = 10;
        traces.push_back(workload::generateApp(p).trace);
    }
    for (const trace::Trace &tr : traces) {
        ASSERT_EQ(tr.validate(true), "");
        gold::Closure weak(tr, weakConfigFor(tr));
        PairSet oracle = racePairs(weak.races());
        for (Backend b : kBackends) {
            BackendGuard guard(b);
            report::ExactChecker sink;
            predict::ShbEngine shb(tr);
            shb.run(sink);
            EXPECT_EQ(shb.malformedDropped(), 0u);
            EXPECT_EQ(reportPairs(sink.races()), oracle)
                << "backend " << static_cast<int>(b);
        }
    }
}

TEST(ShbEngine, AsyncWeakOrderingEqualsHappensBefore)
{
    // Every async edge is programmatic, so the weak relation is the
    // full happens-before: prediction runs but can surface only
    // detector misses, never schedule-hidden pairs.
    core::WeakOrderingSpec spec =
        core::weakOrderingFor(ModelKind::Async);
    EXPECT_FALSE(spec.weakerThanStrong());

    workload::GeneratedAsyncApp app =
        workload::generateAsyncApp(workload::asyncProfiles().front());
    ASSERT_EQ(app.trace.validate(true), "");
    gold::Closure strong(app.trace);
    report::ExactChecker sink;
    predict::ShbEngine shb(app.trace);
    shb.run(sink);
    EXPECT_EQ(shb.malformedDropped(), 0u);
    EXPECT_EQ(reportPairs(sink.races()), racePairs(strong.races()));
}

// ---------------------------------------------------------------
// The seeded HB-hidden patterns: prediction finds the planted pair,
// replay confirms it, and combined recall strictly beats observed.
// ---------------------------------------------------------------

void
expectConfirmedHiddenRace(const trace::Trace &tr)
{
    ASSERT_EQ(tr.validate(true), "");
    std::vector<RaceReport> detected = detectRaces(tr);
    PredictResult res = predict::runPrediction(tr, detected);
    const predict::PredictSummary &sum = res.summary;

    EXPECT_GE(sum.candidates, 1u);
    EXPECT_GE(sum.hidden, 1u);
    EXPECT_GE(sum.confirmed, 1u);
    ASSERT_TRUE(sum.recallScored);
    EXPECT_GT(sum.combinedRecall, sum.observedRecall)
        << "prediction must add recall over the observed schedule";
    EXPECT_GE(sum.combinedRecall, sum.observedRecall);

    // Every Confirmed class went through replay: a flip experiment
    // ran and carries the divergence detail.
    for (const report::TriageClass &cls : res.triage.classes) {
        if (cls.verdict == ReplayVerdict::Confirmed) {
            EXPECT_NE(cls.detail.find("diverges"), std::string::npos)
                << cls.detail;
        }
    }
    EXPECT_GE(sum.replays, 1u);
}

TEST(Predict, ConfirmsLockShadowedWrites)
{
    expectConfirmedHiddenRace(workload::lockShadowedPattern());
}

TEST(Predict, ConfirmsQueueReorderedSiblings)
{
    expectConfirmedHiddenRace(workload::queueSiblingsPattern());
}

TEST(Predict, SeededPatternsConfirmUnderEveryBackend)
{
    for (Backend b : kBackends) {
        BackendGuard guard(b);
        expectConfirmedHiddenRace(workload::lockShadowedPattern());
        expectConfirmedHiddenRace(workload::queueSiblingsPattern());
    }
}

TEST(Predict, FifoForcedPairIsInfeasibleNeverConfirmed)
{
    trace::Trace tr = workload::fifoForcedPattern();
    ASSERT_EQ(tr.validate(true), "");
    PredictResult res = predict::runPrediction(tr, detectRaces(tr));
    const predict::PredictSummary &sum = res.summary;

    EXPECT_GE(sum.candidates, 1u);
    EXPECT_EQ(sum.confirmed, 0u)
        << "a FIFO-forced order must never be confirmed";
    EXPECT_GE(sum.infeasible, 1u);
    for (const report::TriageClass &cls : res.triage.classes) {
        EXPECT_NE(cls.verdict, ReplayVerdict::Confirmed);
        if (cls.verdict == ReplayVerdict::Infeasible) {
            EXPECT_NE(cls.detail.find("queue discipline"),
                      std::string::npos)
                << cls.detail;
        }
    }
    // Nothing the detector observed and nothing confirmed: recall
    // stays at its observed level.
    ASSERT_TRUE(sum.recallScored);
    EXPECT_EQ(sum.combinedHits, sum.observedHits);
}

// ---------------------------------------------------------------
// Soundness on ordinary workloads: prediction never reports a pair
// replay did not confirm, and recall never regresses.
// ---------------------------------------------------------------

TEST(Predict, NeverRegressesRecallOnProfilesAndChaos)
{
    std::vector<trace::Trace> traces;
    {
        workload::AppProfile p;
        p.seed = 13;
        p.looperEvents = 100;
        p.binderEvents = 12;
        traces.push_back(workload::generateApp(p).trace);
    }
    traces.push_back(workload::chaosTrace(31, 50));
    for (const trace::Trace &tr : traces) {
        ASSERT_EQ(tr.validate(true), "");
        std::vector<RaceReport> detected = detectRaces(tr);
        PredictResult res = predict::runPrediction(tr, detected);
        const predict::PredictSummary &sum = res.summary;
        ASSERT_TRUE(sum.recallScored);
        EXPECT_GE(sum.combinedRecall, sum.observedRecall);
        EXPECT_EQ(sum.malformedDropped, 0u);
        // The exact checker reports every HB-unordered pair, so
        // every surviving candidate must be HB-ordered (hidden);
        // a Confirmed verdict must carry replay evidence.
        gold::Closure strong(tr);
        for (const report::TriageClass &cls : res.triage.classes) {
            if (cls.verdict != ReplayVerdict::Confirmed)
                continue;
            EXPECT_NE(cls.detail.find("diverges"),
                      std::string::npos);
            const RaceReport &rep = cls.representative;
            EXPECT_TRUE(
                strong.happensBefore(rep.prevOp, rep.curOp) ||
                strong.happensBefore(rep.curOp, rep.prevOp))
                << "exact detection leaves only hidden candidates";
        }
    }
}

// ---------------------------------------------------------------
// Candidate bounding: both caps drop deterministically and loudly.
// ---------------------------------------------------------------

TEST(Predict, BoundsDropWithExplicitCounters)
{
    trace::Trace tr = workload::chaosTrace(11, 60);
    std::vector<RaceReport> detected = detectRaces(tr);

    PredictConfig tight;
    tight.bounds.window = 1;
    tight.bounds.maxCandidates = 1;
    PredictResult bounded = predict::runPrediction(tr, detected, tight);
    PredictResult full = predict::runPrediction(tr, detected);

    EXPECT_GT(bounded.summary.windowDrops, 0u);
    EXPECT_LE(bounded.summary.candidates, 1u);
    EXPECT_GT(full.summary.candidates, bounded.summary.candidates);
    EXPECT_EQ(full.summary.windowDrops, 0u)
        << "default window must hold this trace";

    // Deterministic: the same bounds drop the same pairs.
    PredictResult again = predict::runPrediction(tr, detected, tight);
    EXPECT_EQ(again.summary.candidates, bounded.summary.candidates);
    EXPECT_EQ(again.summary.windowDrops, bounded.summary.windowDrops);
    EXPECT_EQ(again.summary.capDrops, bounded.summary.capDrops);
}

TEST(Predict, OverOpsCapLeavesCandidatesUnverified)
{
    trace::Trace tr = workload::lockShadowedPattern();
    PredictConfig cfg;
    cfg.maxOps = 4;  // force the degradation path
    PredictResult res = predict::runPrediction(tr, detectRaces(tr), cfg);
    EXPECT_GE(res.summary.candidates, 1u);
    EXPECT_EQ(res.summary.confirmed, 0u);
    EXPECT_FALSE(res.summary.recallScored);
    ASSERT_FALSE(res.summary.notes.empty());
    for (const report::TriageClass &cls : res.triage.classes)
        EXPECT_EQ(cls.verdict, ReplayVerdict::Unverified);
}

// ---------------------------------------------------------------
// Byte-identical rendered prediction output across clock backends.
// ---------------------------------------------------------------

std::string
renderPrediction(const trace::Trace &tr, Backend b)
{
    BackendGuard guard(b);
    std::vector<RaceReport> detected = detectRaces(tr);
    PredictResult res = predict::runPrediction(tr, detected);
    trace::TraceMeta meta = trace::TraceMeta::fromTrace(tr);
    std::string out = res.summary.summary() + "\n";
    for (const report::TriageClass &cls : res.triage.classes)
        out += report::describeClass(meta, cls) + "\n";
    out += res.summary.recallLine() + "\n";
    return out;
}

TEST(Predict, RenderedOutputByteIdenticalAcrossBackends)
{
    std::vector<trace::Trace> traces;
    traces.push_back(workload::lockShadowedPattern());
    traces.push_back(workload::queueSiblingsPattern());
    traces.push_back(workload::fifoForcedPattern());
    traces.push_back(workload::chaosTrace(19, 40));
    for (const trace::Trace &tr : traces) {
        const std::string sparse = renderPrediction(tr, Backend::Sparse);
        EXPECT_EQ(renderPrediction(tr, Backend::Cow), sparse);
        EXPECT_EQ(renderPrediction(tr, Backend::Tree), sparse);
        EXPECT_EQ(renderPrediction(tr, Backend::Hybrid), sparse);
    }
}

} // namespace
} // namespace asyncclock
