# Smoke-test driver for the example binaries.
#
# CTest's PASS_REGULAR_EXPRESSION ignores the process exit code, so a
# crashing binary whose partial output happens to match would pass. A
# script driver enforces both: exit code 0 AND output matching
# SMOKE_PATTERN.
#
# Usage (from add_test):
#   cmake -DSMOKE_BINARY=<path> -DSMOKE_PATTERN=<regex>
#         [-DSMOKE_ARGS=<arg;list>] -P run_smoke.cmake

if(NOT DEFINED SMOKE_BINARY OR NOT DEFINED SMOKE_PATTERN)
    message(FATAL_ERROR
            "run_smoke.cmake requires -DSMOKE_BINARY and -DSMOKE_PATTERN")
endif()

execute_process(
    COMMAND "${SMOKE_BINARY}" ${SMOKE_ARGS}
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE rc
)

if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "${SMOKE_BINARY} exited with '${rc}'\n"
            "stdout:\n${out}\nstderr:\n${err}")
endif()

if(NOT out MATCHES "${SMOKE_PATTERN}")
    message(FATAL_ERROR
            "${SMOKE_BINARY} output does not match '${SMOKE_PATTERN}'\n"
            "stdout:\n${out}\nstderr:\n${err}")
endif()
