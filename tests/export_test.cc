/**
 * @file
 * Tests for the JSON writer, the report/trace-stats exporters, and
 * the dense vector-clock ablation baseline (equivalence with the
 * sparse clock under randomized operations).
 */

#include <gtest/gtest.h>

#include "../bench/dense_clock.hh"
#include "core/detector.hh"
#include "report/export.hh"
#include "report/fasttrack.hh"
#include "support/json.hh"
#include "support/rng.hh"
#include "verify/verifier.hh"
#include "workload/workload.hh"

namespace asyncclock {
namespace {

TEST(JsonWriter, ObjectsArraysAndEscaping)
{
    JsonWriter w;
    w.beginObject();
    w.field("name", std::string("a\"b\\c\nd"));
    w.field("count", std::uint64_t(42));
    w.field("ratio", 0.5);
    w.field("flag", true);
    w.key("items").beginArray();
    w.value(std::uint64_t(1));
    w.value("two");
    w.endArray();
    w.endObject();
    EXPECT_EQ(w.str(),
              "{\"name\":\"a\\\"b\\\\c\\nd\",\"count\":42,"
              "\"ratio\":0.500000,\"flag\":true,\"items\":[1,\"two\"]}");
}

TEST(JsonWriter, ControlCharactersEscaped)
{
    JsonWriter w;
    w.value(std::string("x\x01y"));
    EXPECT_EQ(w.str(), "\"x\\u0001y\"");
}

TEST(Export, ReportJsonContainsGroups)
{
    workload::AppProfile p;
    p.seed = 2024;
    p.looperEvents = 80;
    auto app = workload::generateApp(p);
    report::FastTrackChecker checker;
    core::DetectorConfig cfg;
    cfg.windowMs = 0;
    core::AsyncClockDetector det(app.trace, checker, cfg);
    det.runAll();
    auto summary =
        report::RaceAnalyzer(app.trace).analyze(checker.races());
    std::string json = report::toJson(summary, app.trace);
    EXPECT_NE(json.find("\"harmful\":" +
                        std::to_string(summary.harmful)),
              std::string::npos);
    EXPECT_NE(json.find("\"groups\":["), std::string::npos);
    EXPECT_NE(json.find("App.onResume"), std::string::npos);
    // Balanced braces (cheap well-formedness check).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}

TEST(Export, TraceStatsJson)
{
    workload::AppProfile p;
    p.seed = 5;
    p.looperEvents = 60;
    auto app = workload::generateApp(p);
    auto stats = app.trace.stats();
    std::string json = report::toJson(stats);
    EXPECT_NE(json.find("\"looperEvents\":" +
                        std::to_string(stats.looperEvents)),
              std::string::npos);
    EXPECT_NE(json.find("\"spanMs\":"), std::string::npos);
}

TEST(Export, ReportOrderIsInputOrderIndependent)
{
    // The sharded checker merges races in nondeterministic order; the
    // exported report must not depend on it. Shuffle the race list
    // and require byte-identical summary text and JSON.
    workload::AppProfile p;
    p.seed = 31337;
    p.looperEvents = 80;
    auto app = workload::generateApp(p);
    report::FastTrackChecker checker;
    core::DetectorConfig cfg;
    cfg.windowMs = 0;
    core::AsyncClockDetector det(app.trace, checker, cfg);
    det.runAll();
    std::vector<report::RaceReport> races = checker.races();
    ASSERT_GT(races.size(), 1u);

    report::RaceAnalyzer analyzer(app.trace);
    auto render = [&](const std::vector<report::RaceReport> &in) {
        auto summary = analyzer.analyze(in);
        std::string text = summary.summary() + "\n";
        for (const auto &group : summary.reported)
            text += analyzer.describe(group) + "\n";
        return text + report::toJson(summary, app.trace);
    };

    std::string baseline = render(races);
    Rng rng(7);
    for (int round = 0; round < 5; ++round) {
        // Fisher-Yates with the repo's deterministic Rng.
        for (std::size_t i = races.size() - 1; i > 0; --i) {
            std::size_t j = rng.below(i + 1);
            std::swap(races[i], races[j]);
        }
        EXPECT_EQ(render(races), baseline) << "round " << round;
    }
}

TEST(Export, TriageJsonCarriesVerdicts)
{
    workload::AppProfile p;
    p.seed = 424;
    p.looperEvents = 70;
    auto app = workload::generateApp(p);
    report::FastTrackChecker checker;
    core::DetectorConfig cfg;
    cfg.windowMs = 0;
    core::AsyncClockDetector det(app.trace, checker, cfg);
    det.runAll();
    auto summary =
        report::RaceAnalyzer(app.trace).analyze(checker.races());

    report::TriageReport tri = report::buildTriage(checker.races());
    verify::verifyTriage(tri, app.trace, {});
    std::string json = report::toJson(summary, tri, app.trace);
    EXPECT_NE(json.find("\"verification\":{"), std::string::npos);
    EXPECT_NE(json.find("\"confirmed\":" +
                        std::to_string(tri.confirmed)),
              std::string::npos);
    EXPECT_NE(json.find("\"CONFIRMED\""), std::string::npos);
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

// ----------------------------------------------------------------
// Dense vs sparse vector clocks (section 4.2 ablation baseline).
// ----------------------------------------------------------------

TEST(DenseClock, MatchesSparseUnderRandomOps)
{
    Rng rng(99);
    for (int round = 0; round < 50; ++round) {
        clock::DenseClock dense, dense2;
        clock::VectorClock sparse, sparse2;
        for (int i = 0; i < 60; ++i) {
            auto c = static_cast<clock::ChainId>(rng.below(128));
            auto t = static_cast<clock::Tick>(rng.range(1, 50));
            if (rng.chance(0.5)) {
                dense.raise(c, t);
                sparse.raise(c, t);
            } else {
                dense2.raise(c, t);
                sparse2.raise(c, t);
            }
        }
        dense.joinWith(dense2);
        sparse.joinWith(sparse2);
        EXPECT_TRUE(dense.toSparse() == sparse);
        EXPECT_EQ(dense.size(), sparse.size());
        for (int i = 0; i < 20; ++i) {
            clock::Epoch e{static_cast<clock::ChainId>(rng.below(160)),
                           static_cast<clock::Tick>(rng.range(1, 60))};
            EXPECT_EQ(dense.knows(e), sparse.knows(e));
        }
        EXPECT_EQ(dense.leq(dense2), sparse.leq(sparse2));
    }
}

TEST(DenseClock, SpaceBlowupOnSparseUse)
{
    // One far chain id: dense pays for the whole index range, sparse
    // for one entry — the section 4.2 motivation in one assertion.
    clock::DenseClock dense;
    clock::VectorClock sparse;
    dense.raise(100000, 1);
    sparse.raise(100000, 1);
    EXPECT_GT(dense.byteSize(), 100000 * sizeof(clock::Tick) / 2);
    EXPECT_LT(sparse.byteSize(), 1024u);
}

} // namespace
} // namespace asyncclock
