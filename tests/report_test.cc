/**
 * @file
 * Tests for the race-reporting layer: the FastTrack checker (against
 * the exact checker and the gold oracle), race groups, the
 * user-induced filter, the commutativity whitelist, and ground-truth
 * classification (Table 3 pipeline).
 */

#include <gtest/gtest.h>

#include <set>

#include "core/detector.hh"
#include "gold/closure.hh"
#include "report/checker.hh"
#include "report/fasttrack.hh"
#include "report/races.hh"
#include "runtime/runtime.hh"
#include "workload/workload.hh"

namespace asyncclock::report {
namespace {

using runtime::Runtime;
using runtime::Script;
using trace::Trace;

core::DetectorConfig
exactConfig()
{
    core::DetectorConfig cfg;
    cfg.windowMs = 0;
    return cfg;
}

/** Variables flagged racy by a checker run under AsyncClock. */
template <typename Checker>
std::set<trace::VarId>
racyVars(const Trace &tr)
{
    Checker checker;
    core::AsyncClockDetector det(tr, checker, exactConfig());
    det.runAll();
    std::set<trace::VarId> out;
    for (const auto &r : checker.races())
        out.insert(r.var);
    return out;
}

// ----------------------------------------------------------------
// FastTrack unit behavior (driven directly).
// ----------------------------------------------------------------

Access
acc(trace::OpId op, clock::ChainId chain, clock::Tick tick,
    bool isWrite)
{
    Access a;
    a.op = op;
    a.epoch = {chain, tick};
    a.site = 0;
    a.isWrite = isWrite;
    return a;
}

TEST(FastTrack, OrderedWritesNoRace)
{
    FastTrackChecker ft;
    clock::VectorClock vc;
    vc.raise(0, 1);
    ft.onAccess(0, acc(0, 0, 1, true), vc);
    vc.raise(0, 2);
    vc.raise(1, 1);  // second write on another chain, but ordered
    ft.onAccess(0, acc(1, 1, 1, true), vc);
    EXPECT_TRUE(ft.races().empty());
}

TEST(FastTrack, ConcurrentWritesRace)
{
    FastTrackChecker ft;
    clock::VectorClock vc1;
    vc1.raise(0, 1);
    ft.onAccess(0, acc(0, 0, 1, true), vc1);
    clock::VectorClock vc2;
    vc2.raise(1, 1);  // knows nothing of chain 0
    ft.onAccess(0, acc(1, 1, 1, true), vc2);
    ASSERT_EQ(ft.races().size(), 1u);
    EXPECT_EQ(ft.races()[0].prevOp, 0u);
    EXPECT_EQ(ft.races()[0].curOp, 1u);
    EXPECT_TRUE(ft.races()[0].prevWrite);
}

TEST(FastTrack, WriteReadRace)
{
    FastTrackChecker ft;
    clock::VectorClock vc1;
    vc1.raise(0, 1);
    ft.onAccess(0, acc(0, 0, 1, true), vc1);
    clock::VectorClock vc2;
    vc2.raise(1, 1);
    ft.onAccess(0, acc(1, 1, 1, false), vc2);
    ASSERT_EQ(ft.races().size(), 1u);
    EXPECT_FALSE(ft.races()[0].curWrite);
}

TEST(FastTrack, ReadSharedThenOrderedWriteNoRace)
{
    FastTrackChecker ft;
    // Two concurrent reads -> read-shared.
    clock::VectorClock vc1;
    vc1.raise(0, 1);
    ft.onAccess(0, acc(0, 0, 1, false), vc1);
    clock::VectorClock vc2;
    vc2.raise(1, 1);
    ft.onAccess(0, acc(1, 1, 1, false), vc2);
    EXPECT_TRUE(ft.races().empty());
    // A write that knows both reads: no race.
    clock::VectorClock vc3;
    vc3.raise(0, 5);
    vc3.raise(1, 5);
    vc3.raise(2, 1);
    ft.onAccess(0, acc(2, 2, 1, true), vc3);
    EXPECT_TRUE(ft.races().empty());
}

TEST(FastTrack, ReadSharedRacyWrite)
{
    FastTrackChecker ft;
    clock::VectorClock vc1;
    vc1.raise(0, 1);
    ft.onAccess(0, acc(0, 0, 1, false), vc1);
    clock::VectorClock vc2;
    vc2.raise(1, 1);
    ft.onAccess(0, acc(1, 1, 1, false), vc2);
    // Write that knows only the first read: races with the second.
    clock::VectorClock vc3;
    vc3.raise(0, 5);
    vc3.raise(2, 1);
    ft.onAccess(0, acc(2, 2, 1, true), vc3);
    ASSERT_EQ(ft.races().size(), 1u);
}

TEST(FastTrack, SameChainReadsStayExclusive)
{
    FastTrackChecker ft;
    clock::VectorClock vc;
    for (clock::Tick t = 1; t <= 10; ++t) {
        vc.raise(0, t);
        ft.onAccess(0, acc(t, 0, t, false), vc);
    }
    EXPECT_TRUE(ft.races().empty());
    EXPECT_LT(ft.byteSize(), 4096u);
}

// ----------------------------------------------------------------
// FastTrack vs exact checker on full app traces.
// ----------------------------------------------------------------

TEST(FastTrack, FlagsSameVariablesAsExactChecker)
{
    for (std::uint64_t seed : {501u, 502u, 503u, 504u}) {
        workload::AppProfile p;
        p.seed = seed;
        p.looperEvents = 120;
        p.spanMs = 25000;
        auto app = workload::generateApp(p);
        // FastTrack keeps only frontier state, so it reports a subset
        // of the exact pairs — but it must flag the same *variables*
        // (the first racy pair on each variable is always caught).
        auto exact = racyVars<ExactChecker>(app.trace);
        auto fast = racyVars<FastTrackChecker>(app.trace);
        EXPECT_EQ(fast, exact) << "seed " << seed;
    }
}

TEST(FastTrack, AgreesWithGoldOnVariables)
{
    workload::AppProfile p;
    p.seed = 77;
    p.looperEvents = 100;
    auto app = workload::generateApp(p);
    gold::Closure hb(app.trace);
    std::set<trace::VarId> goldVars;
    for (const auto &r : hb.races())
        goldVars.insert(app.trace.op(r.first).target);
    EXPECT_EQ(racyVars<FastTrackChecker>(app.trace), goldVars);
}

// ----------------------------------------------------------------
// Race groups, filters, classification.
// ----------------------------------------------------------------

/** A trace with one race per flavor: user-user (harmful label),
 * framework-framework, commutative-library pair. */
Trace
flavoredTrace()
{
    Runtime rt;
    auto q = rt.addLooper("main");
    auto userVar = rt.var("user", trace::SeedLabel::Harmful);
    auto fwVar = rt.var("fw", trace::SeedLabel::HarmlessOther);
    auto commVar = rt.var("comm",
                          trace::SeedLabel::HarmlessCommutative);
    auto su = rt.site("App.java:1", trace::Frame::User);
    auto sf = rt.site("android.os.Looper:9", trace::Frame::Framework);
    auto sc1 = rt.site("ArrayList.add:1", trace::Frame::Library, 7);
    auto sc2 = rt.site("ArrayList.add:2", trace::Frame::Library, 7);
    rt.spawnWorker("a", Script()
                            .post(q, Script()
                                         .write(userVar, su)
                                         .write(fwVar, sf)
                                         .write(commVar, sc1)));
    rt.spawnWorker("b", Script()
                            .post(q, Script()
                                         .write(userVar, su)
                                         .write(fwVar, sf)
                                         .write(commVar, sc2)));
    return rt.run();
}

std::vector<RaceReport>
racesOf(const Trace &tr)
{
    ExactChecker checker;
    core::AsyncClockDetector det(tr, checker, exactConfig());
    det.runAll();
    return checker.races();
}

TEST(RaceAnalyzer, FullPipeline)
{
    Trace tr = flavoredTrace();
    auto races = racesOf(tr);
    ASSERT_EQ(races.size(), 3u);

    RaceAnalyzer analyzer(tr);
    ReportSummary summary = analyzer.analyze(races);
    // Framework-framework race dropped by the user-induced filter;
    // commutative pair counted as filtered; harmful reported.
    EXPECT_EQ(summary.allGroups, 2u);
    EXPECT_EQ(summary.filteredGroups, 1u);
    EXPECT_EQ(summary.harmful, 1u);
    EXPECT_EQ(summary.reported.size(), 1u);
    EXPECT_EQ(summary.reported[0].verdict, Verdict::Harmful);
    EXPECT_FALSE(analyzer.describe(summary.reported[0]).empty());
}

TEST(RaceAnalyzer, FiltersCanBeDisabled)
{
    Trace tr = flavoredTrace();
    auto races = racesOf(tr);
    RaceAnalyzer analyzer(tr);
    FilterConfig cfg;
    cfg.userInducedOnly = false;
    cfg.commutativityFilter = false;
    ReportSummary summary = analyzer.analyze(races, cfg);
    EXPECT_EQ(summary.allGroups, 3u);
    EXPECT_EQ(summary.filteredGroups, 0u);
    EXPECT_EQ(summary.reported.size(), 3u);
}

TEST(RaceAnalyzer, GroupsCollapseRepeatedSitePairs)
{
    // Ten races from the same site pair => one group.
    Runtime rt;
    auto q = rt.addLooper("main");
    auto s = rt.site("App.java:5", trace::Frame::User);
    Script a, b;
    for (int i = 0; i < 10; ++i) {
        auto v = rt.var("v" + std::to_string(i),
                        trace::SeedLabel::HarmlessTypeII);
        a.post(q, Script().write(v, s));
        b.post(q, Script().write(v, s));
    }
    rt.spawnWorker("a", std::move(a));
    rt.spawnWorker("b", std::move(b));
    Trace tr = rt.run();
    auto races = racesOf(tr);
    ASSERT_GE(races.size(), 10u);
    RaceAnalyzer analyzer(tr);
    ReportSummary summary = analyzer.analyze(races);
    EXPECT_EQ(summary.allGroups, 1u);
    EXPECT_EQ(summary.typeII, 1u);
    EXPECT_EQ(summary.reported[0].raceCount, races.size());
}

TEST(RaceAnalyzer, ClassifiesAllSeedLabels)
{
    workload::AppProfile p;
    p.seed = 91;
    p.looperEvents = 100;
    auto app = workload::generateApp(p);
    auto races = racesOf(app.trace);
    RaceAnalyzer analyzer(app.trace);
    ReportSummary summary = analyzer.analyze(races);
    EXPECT_EQ(summary.harmful, app.truth.harmful);
    EXPECT_EQ(summary.typeI, app.truth.typeI);
    EXPECT_EQ(summary.typeII, app.truth.typeII);
    EXPECT_EQ(summary.filteredGroups, app.truth.commutative);
    // Framework noise never reaches the report.
    EXPECT_EQ(summary.allGroups,
              app.truth.harmful + app.truth.typeI + app.truth.typeII +
                  app.truth.commutative);
    EXPECT_FALSE(summary.summary().empty());
}

TEST(RaceAnalyzer, UserInducedPredicate)
{
    Trace tr = flavoredTrace();
    RaceAnalyzer analyzer(tr);
    EXPECT_TRUE(analyzer.userInduced(0));    // user site
    EXPECT_FALSE(analyzer.userInduced(1));   // framework site
    EXPECT_TRUE(analyzer.userInduced(2));    // library site
    EXPECT_FALSE(analyzer.userInduced(trace::kInvalidId));
    EXPECT_TRUE(analyzer.commutative(2, 3));
    EXPECT_FALSE(analyzer.commutative(0, 2));
}

} // namespace
} // namespace asyncclock::report
