/**
 * @file
 * The model/mechanism seam, exercised from the async side: model
 * selection helpers, AsyncTaskModel recall against the
 * model-parameterized gold closure, sharded checking over async
 * traces, and checkpoint/resume identity for an async run (including
 * the v3 model tag's mismatch refusal).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <utility>

#include "core/engine.hh"
#include "gold/closure.hh"
#include "report/checkpoint.hh"
#include "report/fasttrack.hh"
#include "report/sharded.hh"
#include "workload/async_workload.hh"

namespace asyncclock {
namespace {

using core::DetectorEngine;
using core::ModelKind;

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

// ---------------------------------------------------------------
// Model selection helpers.
// ---------------------------------------------------------------

TEST(ModelSeam, NamesParseAndPrint)
{
    EXPECT_STREQ(core::modelName(ModelKind::Looper), "looper");
    EXPECT_STREQ(core::modelName(ModelKind::Async), "async");
    ModelKind k = ModelKind::Looper;
    EXPECT_TRUE(core::parseModelName("async", k));
    EXPECT_EQ(k, ModelKind::Async);
    EXPECT_TRUE(core::parseModelName("looper", k));
    EXPECT_EQ(k, ModelKind::Looper);
    k = ModelKind::Async;
    EXPECT_FALSE(core::parseModelName("fifo", k));
    EXPECT_EQ(k, ModelKind::Async) << "failed parse must not clobber";
}

TEST(ModelSeam, DialectPicksModel)
{
    EXPECT_EQ(core::modelForDialect(trace::Dialect::Looper),
              ModelKind::Looper);
    EXPECT_EQ(core::modelForDialect(trace::Dialect::Async),
              ModelKind::Async);
}

// ---------------------------------------------------------------
// Recall against the gold closure (the issue's >= 0.95 bar; the
// generator's confinement discipline makes exact agreement
// achievable, so that is what we require).
// ---------------------------------------------------------------

TEST(AsyncModel, MatchesGoldClosureOnEveryProfile)
{
    for (const workload::AsyncProfile &p : workload::asyncProfiles()) {
        workload::GeneratedAsyncApp app =
            workload::generateAsyncApp(p);
        ASSERT_EQ(app.trace.validate(true), "") << p.name;

        report::ExactChecker checker;
        DetectorEngine eng(ModelKind::Async, app.trace, checker, {});
        eng.runAll();
        ASSERT_TRUE(eng.runStatus().isOk()) << p.name;

        std::set<std::pair<trace::OpId, trace::OpId>> detected;
        for (const report::RaceReport &r : checker.races())
            detected.insert({r.prevOp, r.curOp});

        gold::Closure closure(app.trace);
        std::size_t hit = 0;
        for (const gold::GoldRace &g : closure.races())
            hit += detected.count({g.first, g.second});
        ASSERT_GT(closure.races().size(), 0u) << p.name;
        double recall = static_cast<double>(hit) /
                        static_cast<double>(closure.races().size());
        EXPECT_GE(recall, 0.95) << p.name;
        // And no fabricated pairs: everything detected is gold-racy.
        EXPECT_EQ(detected.size(), hit) << p.name;
    }
}

TEST(AsyncModel, SeededRacesFoundAndConfinedVarsQuiet)
{
    for (const workload::AsyncProfile &p : workload::asyncProfiles()) {
        workload::GeneratedAsyncApp app =
            workload::generateAsyncApp(p);
        report::ExactChecker checker;
        DetectorEngine eng(ModelKind::Async, app.trace, checker, {});
        eng.runAll();

        std::set<trace::VarId> racy;
        for (const report::RaceReport &r : checker.races())
            racy.insert(r.var);
        for (trace::VarId v = 0; v < app.trace.vars().size(); ++v) {
            const trace::VarInfo &vi = app.trace.var(v);
            if (vi.seedLabel == trace::SeedLabel::Harmful) {
                EXPECT_TRUE(racy.count(v))
                    << p.name << ": seeded race on '" << vi.name
                    << "' missed";
            } else {
                EXPECT_FALSE(racy.count(v))
                    << p.name << ": false positive on '" << vi.name
                    << "'";
            }
        }
    }
}

// ---------------------------------------------------------------
// The mechanism underneath is shared: sharded checking and
// checkpoint/resume must work unchanged for the async model.
// ---------------------------------------------------------------

TEST(AsyncModel, ShardedCheckerMatchesSequential)
{
    workload::GeneratedAsyncApp app = workload::generateAsyncApp(
        workload::asyncProfileByName("AsyncTree"));

    report::FastTrackChecker seq;
    DetectorEngine e1(ModelKind::Async, app.trace, seq, {});
    e1.runAll();

    for (unsigned shards : {2u, 5u}) {
        report::ShardedConfig scfg;
        scfg.shards = shards;
        report::ShardedChecker sharded(scfg);
        DetectorEngine e2(ModelKind::Async, app.trace, sharded, {});
        e2.runAll();
        const auto &got = sharded.races();  // drains
        ASSERT_EQ(got.size(), seq.races().size()) << shards;
        for (std::size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].prevOp, seq.races()[i].prevOp);
            EXPECT_EQ(got[i].curOp, seq.races()[i].curOp);
            EXPECT_EQ(got[i].var, seq.races()[i].var);
        }
    }
}

TEST(AsyncModel, ResumeIdenticalToUninterruptedRun)
{
    workload::GeneratedAsyncApp app = workload::generateAsyncApp(
        workload::asyncProfileByName("AsyncPipeline"));
    const std::string path = tempPath("async_resume.accp");

    report::FastTrackChecker full;
    {
        report::ResumeFilter filter(full);
        DetectorEngine eng(ModelKind::Async, app.trace, filter, {});
        eng.runAll();
    }
    ASSERT_GT(full.races().size(), 0u);

    // Kill mid-run, checkpoint, rebuild everything from the file.
    std::uint64_t killAt = app.trace.numOps() / 2;
    {
        report::FastTrackChecker ft;
        report::ResumeFilter filter(ft);
        DetectorEngine eng(ModelKind::Async, app.trace, filter, {});
        std::uint64_t n = 0;
        while (n < killAt && eng.processNext())
            ++n;
        report::CheckpointMeta meta;
        meta.opsProcessed = n;
        meta.accessesChecked = filter.accessesSeen();
        meta.modelTag = report::kModelTagAsync;
        ASSERT_TRUE(report::saveCheckpoint(path, meta, ft));
    }
    report::FastTrackChecker resumed;
    auto loaded = report::loadCheckpoint(path, resumed);
    ASSERT_TRUE(loaded) << loaded.status().toString();
    EXPECT_EQ(loaded.value().modelTag, report::kModelTagAsync)
        << "v3 checkpoints must persist the model tag";
    report::ResumeFilter filter(resumed,
                                loaded.value().accessesChecked);
    DetectorEngine eng(ModelKind::Async, app.trace, filter, {});
    eng.runAll();

    ASSERT_EQ(resumed.races().size(), full.races().size());
    for (std::size_t i = 0; i < full.races().size(); ++i) {
        EXPECT_EQ(resumed.races()[i].prevOp, full.races()[i].prevOp);
        EXPECT_EQ(resumed.races()[i].curOp, full.races()[i].curOp);
    }
    std::remove(path.c_str());
}

TEST(AsyncModel, CheckpointModelTagRoundTrips)
{
    const std::string path = tempPath("model_tag.accp");
    report::FastTrackChecker ft;
    report::CheckpointMeta meta;
    meta.modelTag = report::kModelTagAsync;
    ASSERT_TRUE(report::saveCheckpoint(path, meta, ft));
    report::FastTrackChecker back;
    auto loaded = report::loadCheckpoint(path, back);
    ASSERT_TRUE(loaded);
    EXPECT_EQ(loaded.value().modelTag, report::kModelTagAsync);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------
// The generator itself.
// ---------------------------------------------------------------

TEST(AsyncWorkload, ProfilesAreDeterministic)
{
    workload::AsyncProfile p =
        workload::asyncProfileByName("AsyncFanOut");
    workload::GeneratedAsyncApp a = workload::generateAsyncApp(p);
    workload::GeneratedAsyncApp b = workload::generateAsyncApp(p);
    ASSERT_EQ(a.trace.numOps(), b.trace.numOps());
    for (trace::OpId i = 0; i < a.trace.numOps(); ++i) {
        EXPECT_EQ(a.trace.op(i).kind, b.trace.op(i).kind);
        EXPECT_EQ(a.trace.op(i).vtime, b.trace.op(i).vtime);
    }
    EXPECT_EQ(a.endTimeMs, b.endTimeMs);
    EXPECT_EQ(a.cancelledTasks, b.cancelledTasks);
}

TEST(AsyncWorkload, CancellationActuallyHappens)
{
    for (const workload::AsyncProfile &p : workload::asyncProfiles()) {
        workload::GeneratedAsyncApp app =
            workload::generateAsyncApp(p);
        EXPECT_GT(app.cancelledTasks, 0u)
            << p.name << ": the cancel cluster should guarantee at "
            << "least one cancelled task";
    }
}

} // namespace
} // namespace asyncclock
