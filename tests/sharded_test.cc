/**
 * @file
 * ShardedChecker determinism: for any shard count, batch size, and
 * queue capacity, the merged race set must equal the sequential
 * FastTrackChecker's — per-variable access order is preserved by the
 * var % N partition, so shard scheduling cannot change the result.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/detector.hh"
#include "graph/eventracer.hh"
#include "report/fasttrack.hh"
#include "report/sharded.hh"
#include "workload/workload.hh"

namespace asyncclock {
namespace {

using report::RaceReport;
using trace::Trace;

/** The canonical order drain() merges into. */
bool
canonicalLess(const RaceReport &a, const RaceReport &b)
{
    if (a.curOp != b.curOp)
        return a.curOp < b.curOp;
    if (a.prevOp != b.prevOp)
        return a.prevOp < b.prevOp;
    return a.var < b.var;
}

std::vector<RaceReport>
canonical(std::vector<RaceReport> races)
{
    std::sort(races.begin(), races.end(), canonicalLess);
    return races;
}

template <typename Detector>
std::vector<RaceReport>
sequentialRaces(const Trace &tr)
{
    report::FastTrackChecker checker;
    Detector det(tr, checker);
    det.runAll();
    return canonical(checker.races());
}

template <typename Detector>
std::vector<RaceReport>
shardedRaces(const Trace &tr, report::ShardedConfig cfg)
{
    report::ShardedChecker checker(cfg);
    Detector det(tr, checker);
    det.runAll();
    return checker.races();  // drains; already canonical order
}

Trace
workloadTrace(std::uint64_t seed, unsigned events)
{
    workload::AppProfile p;
    p.seed = seed;
    p.looperEvents = events;
    return workload::generateApp(p).trace;
}

TEST(ShardedChecker, MatchesSequentialAcrossShardCounts)
{
    for (auto [seed, events] :
         {std::pair<unsigned, unsigned>{3, 120}, {42, 200}}) {
        Trace tr = workloadTrace(seed, events);
        auto expected = sequentialRaces<core::AsyncClockDetector>(tr);
        ASSERT_FALSE(expected.empty()) << "workload should race";
        for (unsigned shards : {1u, 2u, 8u}) {
            report::ShardedConfig cfg;
            cfg.shards = shards;
            EXPECT_EQ(
                shardedRaces<core::AsyncClockDetector>(tr, cfg),
                expected)
                << "shards=" << shards << " seed=" << seed;
        }
    }
}

TEST(ShardedChecker, MatchesSequentialForEventRacerDetector)
{
    Trace tr = workloadTrace(7, 150);
    auto expected = sequentialRaces<graph::EventRacerDetector>(tr);
    for (unsigned shards : {1u, 8u}) {
        report::ShardedConfig cfg;
        cfg.shards = shards;
        EXPECT_EQ(shardedRaces<graph::EventRacerDetector>(tr, cfg),
                  expected)
            << "shards=" << shards;
    }
}

TEST(ShardedChecker, InsensitiveToBatchAndQueueSizes)
{
    Trace tr = workload::chaosTrace(19, 80);
    auto expected = sequentialRaces<core::AsyncClockDetector>(tr);
    ASSERT_FALSE(expected.empty());
    // Tiny batches/queues maximize handoffs and backpressure stalls;
    // huge batches collapse everything into the final drain flush.
    const report::ShardedConfig cfgs[] = {
        {.shards = 2, .batchOps = 1, .queueCapacity = 1},
        {.shards = 8, .batchOps = 3, .queueCapacity = 2},
        {.shards = 4, .batchOps = 1 << 20, .queueCapacity = 64},
    };
    for (const auto &cfg : cfgs) {
        EXPECT_EQ(shardedRaces<core::AsyncClockDetector>(tr, cfg),
                  expected)
            << "shards=" << cfg.shards
            << " batchOps=" << cfg.batchOps
            << " queueCapacity=" << cfg.queueCapacity;
    }
}

TEST(ShardedChecker, RepeatedRunsAreIdentical)
{
    Trace tr = workloadTrace(11, 100);
    report::ShardedConfig cfg;
    cfg.shards = 4;
    cfg.batchOps = 8;
    auto first = shardedRaces<core::AsyncClockDetector>(tr, cfg);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(shardedRaces<core::AsyncClockDetector>(tr, cfg),
                  first)
            << "run " << i;
}

TEST(ShardedChecker, ByteSizePollableWhileRunning)
{
    Trace tr = workloadTrace(5, 150);
    report::ShardedConfig cfg;
    cfg.shards = 4;
    cfg.batchOps = 4;
    report::ShardedChecker checker(cfg);
    core::AsyncClockDetector det(tr, checker);
    std::uint64_t lastSeen = 0;
    while (det.processNext())
        lastSeen = std::max(lastSeen, checker.byteSize());
    EXPECT_GT(lastSeen, 0u);
    checker.drain();
    EXPECT_GT(checker.byteSize(), 0u);
    EXPECT_FALSE(checker.races().empty());
}

TEST(ShardedChecker, DrainIsIdempotentAndZeroShardClampsToOne)
{
    Trace tr = workload::chaosTrace(23, 40);
    report::ShardedConfig cfg;
    cfg.shards = 0;  // clamps to 1
    report::ShardedChecker checker(cfg);
    EXPECT_EQ(checker.shards(), 1u);
    core::AsyncClockDetector det(tr, checker);
    det.runAll();
    checker.drain();
    auto first = checker.races();
    checker.drain();
    EXPECT_EQ(checker.races(), first);
    EXPECT_EQ(first,
              sequentialRaces<core::AsyncClockDetector>(tr));
}

} // namespace
} // namespace asyncclock
