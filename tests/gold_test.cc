/**
 * @file
 * Tests for the gold-standard closure oracle: each causality rule of
 * Fig 3 / Fig 7 / Table 1 is exercised on a small runtime-built trace
 * and the derived orders (and race sets) are checked by hand.
 */

#include <gtest/gtest.h>

#include <vector>

#include "gold/closure.hh"
#include "runtime/runtime.hh"
#include "trace/trace.hh"

namespace asyncclock::gold {
namespace {

using runtime::PostOpts;
using runtime::Runtime;
using runtime::Script;
using trace::kInvalidId;
using trace::OpId;
using trace::OpKind;
using trace::Trace;

/** All access ops (reads+writes) touching @p var, in trace order. */
std::vector<OpId>
accessesOf(const Trace &tr, trace::VarId var)
{
    std::vector<OpId> out;
    for (OpId i = 0; i < tr.numOps(); ++i) {
        const auto &op = tr.op(i);
        if ((op.kind == OpKind::Read || op.kind == OpKind::Write) &&
            op.target == var) {
            out.push_back(i);
        }
    }
    return out;
}

TEST(Gold, ProgramOrderWithinTask)
{
    Runtime rt;
    auto x = rt.var("x");
    auto s = rt.site("s", trace::Frame::User);
    rt.spawnWorker("w", Script().write(x, s).read(x, s));
    Trace tr = rt.run();
    ASSERT_EQ(tr.validate(), "");
    Closure hb(tr);
    auto acc = accessesOf(tr, x);
    ASSERT_EQ(acc.size(), 2u);
    EXPECT_TRUE(hb.happensBefore(acc[0], acc[1]));
    EXPECT_FALSE(hb.happensBefore(acc[1], acc[0]));
    EXPECT_TRUE(hb.races().empty());
}

TEST(Gold, FifoRuleOrdersSendOrderedEvents)
{
    // Figure 1's asynchronous side: two FIFO events posted in order by
    // one worker must be ordered, with no common handle.
    Runtime rt;
    auto q = rt.addLooper("main");
    auto x = rt.var("x");
    auto s = rt.site("s", trace::Frame::User);
    rt.spawnWorker("w", Script()
                            .post(q, Script().write(x, s))
                            .post(q, Script().write(x, s)));
    Trace tr = rt.run();
    ASSERT_EQ(tr.validate(), "");
    Closure hb(tr);
    EXPECT_TRUE(hb.happensBefore(tr.event(0).endOp,
                                 tr.event(1).beginOp));
    EXPECT_TRUE(hb.races().empty());
}

TEST(Gold, UnorderedSendsRace)
{
    // Two workers post to the same queue with no synchronization:
    // their events may be dispatched in either order in another
    // execution, so conflicting accesses race.
    Runtime rt;
    auto q = rt.addLooper("main");
    auto x = rt.var("x");
    auto s = rt.site("s", trace::Frame::User);
    rt.spawnWorker("w1", Script().post(q, Script().write(x, s)));
    rt.spawnWorker("w2", Script().post(q, Script().write(x, s)));
    Trace tr = rt.run();
    ASSERT_EQ(tr.validate(), "");
    Closure hb(tr);
    EXPECT_EQ(hb.races().size(), 1u);
}

TEST(Gold, NoProgramOrderBetweenEventsOfALooper)
{
    // Same-looper execution order alone must NOT induce an order;
    // without the FIFO premise (here: unordered sends), accesses race
    // even though the events ran sequentially on one looper.
    Runtime rt;
    auto q = rt.addLooper("main");
    auto x = rt.var("x");
    auto s = rt.site("s", trace::Frame::User);
    rt.spawnWorker("w1", Script().post(q, Script().write(x, s)));
    rt.spawnWorker("w2", Script().sleep(50).post(
                             q, Script().write(x, s)));
    Trace tr = rt.run();
    ASSERT_EQ(tr.validate(), "");
    Closure hb(tr);
    // The two events themselves are unordered...
    EXPECT_FALSE(hb.happensBefore(tr.event(0).endOp,
                                  tr.event(1).beginOp));
    EXPECT_EQ(hb.races().size(), 1u);
}

TEST(Gold, ForkJoinOrders)
{
    Runtime rt;
    auto x = rt.var("x");
    auto s = rt.site("s", trace::Frame::User);
    auto tok = rt.token();
    rt.spawnWorker("p", Script()
                            .write(x, s)
                            .fork(tok, "c", Script().write(x, s))
                            .join(tok)
                            .read(x, s));
    Trace tr = rt.run();
    ASSERT_EQ(tr.validate(), "");
    Closure hb(tr);
    EXPECT_TRUE(hb.races().empty());
    auto acc = accessesOf(tr, x);
    ASSERT_EQ(acc.size(), 3u);
    EXPECT_TRUE(hb.happensBefore(acc[0], acc[1]));  // fork edge
    EXPECT_TRUE(hb.happensBefore(acc[1], acc[2]));  // join edge
}

TEST(Gold, ForkWithoutJoinRaces)
{
    Runtime rt;
    auto x = rt.var("x");
    auto s = rt.site("s", trace::Frame::User);
    auto tok = rt.token();
    rt.spawnWorker("p", Script()
                            .fork(tok, "c", Script().write(x, s))
                            .write(x, s));
    Trace tr = rt.run();
    ASSERT_EQ(tr.validate(), "");
    Closure hb(tr);
    EXPECT_EQ(hb.races().size(), 1u);
}

TEST(Gold, SignalWaitOrders)
{
    Runtime rt;
    auto x = rt.var("x");
    auto s = rt.site("s", trace::Frame::User);
    auto h = rt.handle("m");
    rt.spawnWorker("a", Script().write(x, s).signal(h));
    rt.spawnWorker("b", Script().await(h).read(x, s));
    Trace tr = rt.run();
    ASSERT_EQ(tr.validate(), "");
    Closure hb(tr);
    EXPECT_TRUE(hb.races().empty());
}

TEST(Gold, LockLikeNoOrder)
{
    // Two workers write without any signal/wait pairing: race. (Locks
    // induce no causal order in this model; we simply do not model
    // them as signal/wait.)
    Runtime rt;
    auto x = rt.var("x");
    auto s = rt.site("s", trace::Frame::User);
    rt.spawnWorker("a", Script().write(x, s));
    rt.spawnWorker("b", Script().sleep(10).write(x, s));
    Trace tr = rt.run();
    Closure hb(tr);
    EXPECT_EQ(hb.races().size(), 1u);
}

TEST(Gold, LoopBeginOrdersLooperSetupBeforeEvents)
{
    // Writes by the looper thread itself before any event are ordered
    // before event accesses via Rule LOOPBEGIN... our loopers execute
    // no own script, so exercise via worker->fork-before-loopers is
    // not possible; instead check begin(T) precedes begin(E).
    Runtime rt;
    auto q = rt.addLooper("main");
    rt.spawnWorker("w", Script().post(q, Script()));
    Trace tr = rt.run();
    Closure hb(tr);
    // Find the looper's ThreadBegin.
    OpId tb = kInvalidId;
    for (OpId i = 0; i < tr.numOps(); ++i) {
        if (tr.op(i).kind == OpKind::ThreadBegin &&
            tr.op(i).task.index() == tr.looperOf(0)) {
            tb = i;
        }
    }
    ASSERT_NE(tb, kInvalidId);
    EXPECT_TRUE(hb.happensBefore(tb, tr.event(0).beginOp));
    // LOOPEND: end of event precedes looper's ThreadEnd.
    OpId te = kInvalidId;
    for (OpId i = 0; i < tr.numOps(); ++i) {
        if (tr.op(i).kind == OpKind::ThreadEnd &&
            tr.op(i).task.index() == tr.looperOf(0)) {
            te = i;
        }
    }
    ASSERT_NE(te, kInvalidId);
    EXPECT_TRUE(hb.happensBefore(tr.event(0).endOp, te));
}

TEST(Gold, AtomicRuleFig8a)
{
    // Fig 8a: E1 (from w1) signals m in the middle; E2 (from w2,
    // unordered sends) waits on m. The revised ATOMIC rule orders
    // end(E1) before the part of E2 *after* wait(m) only.
    Runtime rt;
    auto q = rt.addLooper("main");
    auto before = rt.var("before");
    auto after = rt.var("after");
    auto s = rt.site("s", trace::Frame::User);
    auto h = rt.handle("m");
    rt.spawnWorker("w1",
                   Script().post(q, Script()
                                        .write(before, s)
                                        .signal(h)
                                        .write(after, s)));
    rt.spawnWorker("w2",
                   Script().sleep(1).post(q, Script()
                                                 .read(before, s)
                                                 .await(h)
                                                 .read(after, s)));
    Trace tr = rt.run();
    ASSERT_EQ(tr.validate(), "");
    // Ensure the intended dispatch: E0 then E1 (E1's await needs E0's
    // signal, otherwise deadlock, so this must hold).
    Closure hb(tr);
    // `after` is written in E1 after signal; read in E2 after wait.
    // Without ATOMIC, only the signal's PO-prefix is ordered, so the
    // write to `after` would race with the read. ATOMIC upgrades
    // end(E1) before the post-wait part of E2.
    auto accAfter = accessesOf(tr, after);
    ASSERT_EQ(accAfter.size(), 2u);
    EXPECT_TRUE(hb.happensBefore(accAfter[0], accAfter[1]));
    // The paper's revision: the pre-wait part of E2 is NOT ordered
    // after E1 — the read of `before` races with nothing here (write
    // happens-before via signal? no: read is before the wait).
    auto accBefore = accessesOf(tr, before);
    ASSERT_EQ(accBefore.size(), 2u);
    EXPECT_FALSE(hb.happensBefore(accBefore[0], accBefore[1]));
    EXPECT_FALSE(hb.happensBefore(accBefore[1], accBefore[0]));
    EXPECT_EQ(hb.races().size(), 1u);  // exactly the `before` pair

    // With ATOMIC disabled, `after` races too.
    GoldConfig noAtomic;
    noAtomic.atomicRule = false;
    Closure hb2(tr, noAtomic);
    EXPECT_EQ(hb2.races().size(), 2u);
}

TEST(Gold, PriorityDelayedRespectsTimes)
{
    // E0 delayed 100, E1 fifo: send order E0 < E1, but
    // priority(E0,E1) is false (100 > 0), so they are unordered;
    // priority(E1,E0) does not apply (sends not ordered that way).
    Runtime rt;
    auto q = rt.addLooper("main");
    auto x = rt.var("x");
    auto s = rt.site("s", trace::Frame::User);
    rt.spawnWorker("w",
                   Script()
                       .post(q, Script().write(x, s),
                             PostOpts::delayed(100))
                       .post(q, Script().write(x, s)));
    Trace tr = rt.run();
    ASSERT_EQ(tr.validate(), "");
    Closure hb(tr);
    EXPECT_EQ(hb.races().size(), 1u);
}

TEST(Gold, PriorityDelayedSameDelayOrdered)
{
    Runtime rt;
    auto q = rt.addLooper("main");
    auto x = rt.var("x");
    auto s = rt.site("s", trace::Frame::User);
    rt.spawnWorker("w",
                   Script()
                       .post(q, Script().write(x, s),
                             PostOpts::delayed(50))
                       .sleep(20)
                       .post(q, Script().write(x, s),
                             PostOpts::delayed(50)));
    Trace tr = rt.run();
    ASSERT_EQ(tr.validate(), "");
    // Dispatch times 50 and 70: non-decreasing, ordered.
    Closure hb(tr);
    EXPECT_TRUE(hb.races().empty());
}

TEST(Gold, AsyncNotOrderedAfterSync)
{
    // Sync E0 then async E1 (send-ordered): Table 1 row
    // (Delayed,Sync) x col (Delayed,Async) is false -> unordered.
    Runtime rt;
    auto q = rt.addLooper("main");
    auto x = rt.var("x");
    auto s = rt.site("s", trace::Frame::User);
    rt.spawnWorker("w",
                   Script()
                       .post(q, Script().write(x, s))
                       .post(q, Script().write(x, s),
                             PostOpts::delayed(0, true)));
    Trace tr = rt.run();
    ASSERT_EQ(tr.validate(), "");
    Closure hb(tr);
    EXPECT_EQ(hb.races().size(), 1u);
    // And async->sync IS ordered.
    Runtime rt2;
    auto q2 = rt2.addLooper("main");
    auto y = rt2.var("y");
    auto s2 = rt2.site("s", trace::Frame::User);
    rt2.spawnWorker("w",
                    Script()
                        .post(q2, Script().write(y, s2),
                              PostOpts::delayed(0, true))
                        .post(q2, Script().write(y, s2)));
    Trace tr2 = rt2.run();
    Closure hb2(tr2);
    EXPECT_TRUE(hb2.races().empty());
}

TEST(Gold, AtTimeOrderedOnlyWithTimes)
{
    Runtime rt;
    auto q = rt.addLooper("main");
    auto x = rt.var("x");
    auto y = rt.var("y");
    auto s = rt.site("s", trace::Frame::User);
    rt.spawnWorker("w",
                   Script()
                       .post(q, Script().write(x, s).write(y, s),
                             PostOpts::at(100))
                       .post(q, Script().write(x, s),
                             PostOpts::at(200))     // ordered after e0
                       .post(q, Script().write(y, s),
                             PostOpts::at(50)));    // NOT ordered
    Trace tr = rt.run();
    ASSERT_EQ(tr.validate(), "");
    Closure hb(tr);
    // x: e0(t100) vs e1(t200): ordered. y: e0(t100) vs e2(t50): racy.
    auto racesFound = hb.races();
    ASSERT_EQ(racesFound.size(), 1u);
    EXPECT_EQ(tr.op(racesFound[0].first).target, y);
}

TEST(Gold, AtFrontRuleFiresThroughFixpoint)
{
    // F (fifo) blocks the looper awaiting h. W posts E2 (delayed
    // 2000), then E1 at front, then signals h. Premises:
    //   send(E2) -PO-> send(E1)           (same worker)
    //   send(E1) -PO-> signal(h) -> wait in F -> end(F)
    //   end(F) -> begin(E2) by PRIORITY (F fifo, E2 delayed)
    // so send(E1) hb begin(E2) and Rule ATFRONT yields
    // end(E1) hb begin(E2). Requires a second fixpoint round.
    Runtime rt;
    auto q = rt.addLooper("main");
    auto x = rt.var("x");
    auto s = rt.site("s", trace::Frame::User);
    auto h = rt.handle("h");
    rt.spawnWorker("w",
                   Script()
                       .post(q, Script().await(h))              // F=e0
                       .post(q, Script().read(x, s),
                             PostOpts::delayed(2000))           // E2=e1
                       .post(q, Script().write(x, s),
                             PostOpts::atFront())               // E1=e2
                       .signal(h));
    Trace tr = rt.run();
    ASSERT_EQ(tr.validate(), "");
    Closure hb(tr);
    EXPECT_TRUE(hb.happensBefore(tr.event(2).endOp,
                                 tr.event(1).beginOp));
    EXPECT_TRUE(hb.races().empty());
    EXPECT_GE(hb.rounds(), 2u);

    // Disabling ATFRONT exposes the race.
    GoldConfig noFront;
    noFront.atFrontRule = false;
    Closure hb2(tr, noFront);
    EXPECT_EQ(hb2.races().size(), 1u);
}

TEST(Gold, AtFrontWithoutGuaranteeIsUnordered)
{
    // E1 at front posted while E2 might already have been dispatched
    // in another execution (no causal path send(E1) hb begin(E2)):
    // the rule must NOT fire.
    Runtime rt;
    auto q = rt.addLooper("main");
    auto x = rt.var("x");
    auto s = rt.site("s", trace::Frame::User);
    rt.spawnWorker("w",
                   Script()
                       .post(q, Script().read(x, s),
                             PostOpts::delayed(500))   // E2=e0
                       .post(q, Script().write(x, s),
                             PostOpts::atFront()));    // E1=e1
    Trace tr = rt.run();
    ASSERT_EQ(tr.validate(), "");
    Closure hb(tr);
    EXPECT_FALSE(hb.happensBefore(tr.event(1).endOp,
                                  tr.event(0).beginOp));
    EXPECT_EQ(hb.races().size(), 1u);
}

TEST(Gold, RemovedEventRelaysItsSendTime)
{
    Runtime rt;
    auto q = rt.addLooper("main");
    auto h = rt.handle("gate");
    auto tok = rt.token();
    rt.spawnWorker("w",
                   Script()
                       .post(q, Script().await(h))           // e0 stall
                       .post(q, Script(), PostOpts{}, tok)   // e1
                       .remove(tok)
                       .post(q, Script())                    // e2
                       .signal(h));
    Trace tr = rt.run();
    ASSERT_EQ(tr.validate(), "");
    Closure hb(tr);
    // e1 removed; its send still happens-before e2's begin.
    EXPECT_TRUE(hb.happensBefore(tr.event(1).sendOp,
                                 tr.event(2).beginOp));
}

TEST(Gold, BinderBeginsOrderedEndsNot)
{
    Runtime rt;
    auto q = rt.addBinderPool("ipc", 2);
    auto x = rt.var("x");
    auto s = rt.site("s", trace::Frame::User);
    rt.spawnWorker("w",
                   Script()
                       .post(q, Script().sleep(100).write(x, s))  // e0
                       .post(q, Script().write(x, s)));           // e1
    Trace tr = rt.run();
    ASSERT_EQ(tr.validate(), "");
    Closure hb(tr);
    EXPECT_TRUE(hb.happensBefore(tr.event(0).beginOp,
                                 tr.event(1).beginOp));
    EXPECT_FALSE(hb.happensBefore(tr.event(0).endOp,
                                  tr.event(1).beginOp));
    // Bodies overlap: the writes race.
    EXPECT_EQ(hb.races().size(), 1u);
}

TEST(Gold, EventChainTransitivity)
{
    // worker -> e0 -> e1 posts to another looper; PO+SEND+FIFO
    // compose transitively across queues.
    Runtime rt;
    auto q1 = rt.addLooper("main");
    auto q2 = rt.addLooper("bg");
    auto x = rt.var("x");
    auto s = rt.site("s", trace::Frame::User);
    rt.spawnWorker(
        "w", Script()
                 .write(x, s)
                 .post(q1, Script().post(q2, Script().read(x, s))));
    Trace tr = rt.run();
    ASSERT_EQ(tr.validate(), "");
    Closure hb(tr);
    EXPECT_TRUE(hb.races().empty());
    auto acc = accessesOf(tr, x);
    ASSERT_EQ(acc.size(), 2u);
    EXPECT_TRUE(hb.happensBefore(acc[0], acc[1]));
}

TEST(Gold, ReadsDoNotRaceWithReads)
{
    Runtime rt;
    auto q = rt.addLooper("main");
    auto x = rt.var("x");
    auto s = rt.site("s", trace::Frame::User);
    rt.spawnWorker("w1", Script().post(q, Script().read(x, s)));
    rt.spawnWorker("w2", Script().post(q, Script().read(x, s)));
    Trace tr = rt.run();
    Closure hb(tr);
    EXPECT_TRUE(hb.races().empty());
}

} // namespace
} // namespace asyncclock::gold
