/**
 * @file
 * Unit tests for the support substrate: formatting, statistics,
 * deterministic RNG, FlatMap, and InvPtr.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "support/bounded_queue.hh"
#include "support/flat_map.hh"
#include "support/format.hh"
#include "support/inv_ptr.hh"
#include "support/rng.hh"
#include "support/stats.hh"

namespace asyncclock {
namespace {

TEST(Format, Strf)
{
    EXPECT_EQ(strf("x=%d y=%s", 42, "ok"), "x=42 y=ok");
    EXPECT_EQ(strf("empty"), "empty");
}

TEST(Format, HumanBytes)
{
    EXPECT_EQ(humanBytes(512), "512B");
    EXPECT_EQ(humanBytes(2048), "2.0KB");
    EXPECT_EQ(humanBytes(3 * 1024ull * 1024), "3.0MB");
}

TEST(Format, WithCommas)
{
    EXPECT_EQ(withCommas(0), "0");
    EXPECT_EQ(withCommas(999), "999");
    EXPECT_EQ(withCommas(1000), "1,000");
    EXPECT_EQ(withCommas(1234567), "1,234,567");
}

TEST(MemStats, AllocReleaseAndPeak)
{
    MemStats s;
    s.alloc(MemCat::EventMeta, 100);
    s.alloc(MemCat::VectorClock, 50);
    EXPECT_EQ(s.live(MemCat::EventMeta), 100u);
    EXPECT_EQ(s.liveTotal(), 150u);
    s.release(MemCat::EventMeta, 60);
    EXPECT_EQ(s.live(MemCat::EventMeta), 40u);
    EXPECT_EQ(s.peak(MemCat::EventMeta), 100u);
    EXPECT_EQ(s.peakTotal(), 150u);
}

TEST(MemStats, SampleSetsAbsoluteValue)
{
    MemStats s;
    s.sample(MemCat::AsyncClock, 500);
    s.sample(MemCat::AsyncClock, 200);
    EXPECT_EQ(s.live(MemCat::AsyncClock), 200u);
    EXPECT_EQ(s.peak(MemCat::AsyncClock), 500u);
    EXPECT_EQ(s.peakTotal(), 500u);
    s.sample(MemCat::GraphNode, 1000);
    EXPECT_EQ(s.liveTotal(), 1200u);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(7), b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowRespectsBound)
{
    Rng r(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(1);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 200; ++i)
        seen.insert(r.range(3, 5));
    EXPECT_EQ(seen, (std::set<std::uint64_t>{3, 4, 5}));
}

TEST(Rng, ChanceExtremes)
{
    Rng r(9);
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ForkIndependence)
{
    Rng a(5);
    Rng child = a.fork();
    // Child stream differs from parent's continuation.
    EXPECT_NE(child.next(), Rng(5).next());
}

TEST(FlatMap, InsertFindErase)
{
    FlatMap<int> m;
    EXPECT_TRUE(m.empty());
    m[3] = 30;
    m[7] = 70;
    EXPECT_EQ(m.size(), 2u);
    ASSERT_NE(m.find(3), nullptr);
    EXPECT_EQ(*m.find(3), 30);
    EXPECT_EQ(m.find(4), nullptr);
    EXPECT_TRUE(m.erase(3));
    EXPECT_FALSE(m.erase(3));
    EXPECT_EQ(m.find(3), nullptr);
    ASSERT_NE(m.find(7), nullptr);
    EXPECT_EQ(*m.find(7), 70);
}

TEST(FlatMap, MatchesStdMapUnderRandomOps)
{
    FlatMap<std::uint64_t> m;
    std::map<std::uint32_t, std::uint64_t> ref;
    Rng r(123);
    for (int i = 0; i < 20000; ++i) {
        std::uint32_t key = static_cast<std::uint32_t>(r.below(300));
        switch (r.below(3)) {
          case 0:
            m[key] = i;
            ref[key] = i;
            break;
          case 1:
            EXPECT_EQ(m.erase(key), ref.erase(key) > 0);
            break;
          default:
            {
                const auto *found = m.find(key);
                auto it = ref.find(key);
                if (it == ref.end()) {
                    EXPECT_EQ(found, nullptr);
                } else {
                    ASSERT_NE(found, nullptr);
                    EXPECT_EQ(*found, it->second);
                }
            }
        }
        EXPECT_EQ(m.size(), ref.size());
    }
    // Final full sweep both directions.
    m.forEach([&](std::uint32_t k, std::uint64_t &v) {
        auto it = ref.find(k);
        ASSERT_NE(it, ref.end());
        EXPECT_EQ(v, it->second);
    });
}

TEST(FlatMap, EraseIf)
{
    FlatMap<int> m;
    for (std::uint32_t i = 0; i < 100; ++i)
        m[i] = static_cast<int>(i);
    m.eraseIf([](std::uint32_t k, int &) { return k % 2 == 0; });
    EXPECT_EQ(m.size(), 50u);
    m.forEach([](std::uint32_t k, int &) { EXPECT_EQ(k % 2, 1u); });
}

TEST(FlatMap, ByteSizeGrows)
{
    FlatMap<int> m;
    EXPECT_EQ(m.byteSize(), 0u);
    for (std::uint32_t i = 0; i < 100; ++i)
        m[i] = 1;
    EXPECT_GT(m.byteSize(), 100 * sizeof(int));
}

struct Probe
{
    static int liveCount;
    int value;
    explicit Probe(int v) : value(v) { ++liveCount; }
    ~Probe() { --liveCount; }
};
int Probe::liveCount = 0;

TEST(InvPtr, RefCountingReclaims)
{
    Probe::liveCount = 0;
    {
        auto p = InvPtr<Probe>::make(5);
        EXPECT_EQ(p.refCount(), 1u);
        EXPECT_EQ(Probe::liveCount, 1);
        {
            InvPtr<Probe> q = p;
            EXPECT_EQ(p.refCount(), 2u);
            EXPECT_EQ(q->value, 5);
        }
        EXPECT_EQ(p.refCount(), 1u);
        EXPECT_EQ(Probe::liveCount, 1);
    }
    EXPECT_EQ(Probe::liveCount, 0);
}

TEST(InvPtr, InvalidateFreesEagerly)
{
    Probe::liveCount = 0;
    auto p = InvPtr<Probe>::make(1);
    InvPtr<Probe> q = p;
    p.invalidate();
    EXPECT_EQ(Probe::liveCount, 0);
    EXPECT_EQ(p.get(), nullptr);
    EXPECT_EQ(q.get(), nullptr);
    EXPECT_TRUE(q.hasRef());
    p.invalidate();  // idempotent
    EXPECT_EQ(Probe::liveCount, 0);
}

TEST(InvPtr, MoveSemantics)
{
    Probe::liveCount = 0;
    auto p = InvPtr<Probe>::make(3);
    InvPtr<Probe> q = std::move(p);
    EXPECT_EQ(p.get(), nullptr);  // NOLINT(bugprone-use-after-move)
    ASSERT_NE(q.get(), nullptr);
    EXPECT_EQ(q->value, 3);
    EXPECT_EQ(q.refCount(), 1u);
    q.reset();
    EXPECT_EQ(Probe::liveCount, 0);
}

TEST(InvPtr, SameAsComparesIdentity)
{
    auto p = InvPtr<Probe>::make(1);
    auto q = p;
    auto r = InvPtr<Probe>::make(1);
    EXPECT_TRUE(p.sameAs(q));
    EXPECT_FALSE(p.sameAs(r));
}

using support::BoundedQueue;
using support::PushResult;
using namespace std::chrono_literals;

TEST(BoundedQueue, TryPushForTimesOutOnFullQueueAndKeepsItem)
{
    BoundedQueue<std::string> q(1);
    std::string first = "first";
    ASSERT_TRUE(q.push(std::move(first)));
    std::string second = "second";
    EXPECT_EQ(q.tryPushFor(second, 20ms), PushResult::Timeout);
    // Timeout must leave the item with the caller for a retry.
    EXPECT_EQ(second, "second");
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.blockedPushes(), 1u);
}

TEST(BoundedQueue, TryPushForSeesClose)
{
    BoundedQueue<int> q(1);
    q.close();
    int item = 7;
    EXPECT_EQ(q.tryPushFor(item, 10ms), PushResult::Closed);
    EXPECT_FALSE(q.push(8));
}

TEST(BoundedQueue, TryPushForSucceedsWhenConsumerDrains)
{
    BoundedQueue<int> q(1);
    ASSERT_TRUE(q.push(1));
    std::thread consumer([&q] {
        std::this_thread::sleep_for(30ms);
        int got = 0;
        ASSERT_TRUE(q.pop(got));
        EXPECT_EQ(got, 1);
    });
    int item = 2;
    EXPECT_EQ(q.tryPushFor(item, 5000ms), PushResult::Pushed);
    consumer.join();
    EXPECT_EQ(q.size(), 1u);
}

TEST(BoundedQueue, CloseWakesBlockedTimedPusher)
{
    BoundedQueue<int> q(1);
    ASSERT_TRUE(q.push(1));
    PushResult result = PushResult::Pushed;
    std::thread pusher([&q, &result] {
        int item = 2;
        result = q.tryPushFor(item, 60000ms);
    });
    std::this_thread::sleep_for(30ms);
    q.close();
    pusher.join();
    EXPECT_EQ(result, PushResult::Closed);
}

TEST(BoundedQueue, CloseWakesEveryBlockedTimedPusherImmediately)
{
    // The daemon's drain path relies on close() releasing ALL
    // admission-blocked producers at once, long before their
    // timeouts expire.
    BoundedQueue<int> q(1);
    ASSERT_TRUE(q.push(0));
    constexpr int kPushers = 8;
    std::vector<PushResult> results(kPushers, PushResult::Pushed);
    std::vector<std::thread> pushers;
    pushers.reserve(kPushers);
    for (int i = 0; i < kPushers; ++i) {
        pushers.emplace_back([&q, &results, i] {
            int item = i;
            results[i] = q.tryPushFor(item, 60000ms);
        });
    }
    std::this_thread::sleep_for(30ms);
    const auto t0 = std::chrono::steady_clock::now();
    q.close();
    for (auto &t : pushers)
        t.join();
    const auto waited = std::chrono::steady_clock::now() - t0;
    EXPECT_LT(waited, 5000ms);  // far below the 60 s timeouts
    for (int i = 0; i < kPushers; ++i)
        EXPECT_EQ(results[i], PushResult::Closed) << "pusher " << i;
}

TEST(BoundedQueue, PopDrainsRemainingItemsAfterClose)
{
    BoundedQueue<int> q(4);
    ASSERT_TRUE(q.push(1));
    ASSERT_TRUE(q.push(2));
    q.close();
    int item = 0;
    EXPECT_TRUE(q.pop(item));
    EXPECT_EQ(item, 1);
    EXPECT_TRUE(q.pop(item));
    EXPECT_EQ(item, 2);
    EXPECT_FALSE(q.pop(item));
}

} // namespace
} // namespace asyncclock
