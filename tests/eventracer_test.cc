/**
 * @file
 * Tests for the EventRacer-style baseline: with the exact checker it
 * must report precisely the gold oracle's race set on every causality
 * feature and on randomized generated apps (parameterized sweep).
 */

#include <gtest/gtest.h>

#include <set>

#include "gold/closure.hh"
#include "graph/eventracer.hh"
#include "report/checker.hh"
#include "runtime/runtime.hh"
#include "workload/workload.hh"

namespace asyncclock::graph {
namespace {

using gold::Closure;
using gold::GoldRace;
using report::ExactChecker;
using runtime::PostOpts;
using runtime::Runtime;
using runtime::Script;
using trace::Trace;

std::set<std::pair<trace::OpId, trace::OpId>>
goldSet(const Trace &tr)
{
    Closure hb(tr);
    std::set<std::pair<trace::OpId, trace::OpId>> out;
    for (const GoldRace &r : hb.races())
        out.insert({r.first, r.second});
    return out;
}

std::set<std::pair<trace::OpId, trace::OpId>>
detectorSet(const Trace &tr, EventRacerConfig cfg = {})
{
    ExactChecker checker;
    EventRacerDetector det(tr, checker, cfg);
    det.runAll();
    std::set<std::pair<trace::OpId, trace::OpId>> out;
    for (const auto &r : checker.races())
        out.insert({r.prevOp, r.curOp});
    return out;
}

void
expectMatchesGold(const Trace &tr, EventRacerConfig cfg = {})
{
    ASSERT_EQ(tr.validate(true), "");
    auto gold = goldSet(tr);
    auto det = detectorSet(tr, cfg);
    EXPECT_EQ(det, gold);
}

TEST(EventRacer, FifoOrderingNoRace)
{
    Runtime rt;
    auto q = rt.addLooper("main");
    auto x = rt.var("x");
    auto s = rt.site("s", trace::Frame::User);
    rt.spawnWorker("w", Script()
                            .post(q, Script().write(x, s))
                            .post(q, Script().write(x, s)));
    expectMatchesGold(rt.run());
}

TEST(EventRacer, UnorderedEventsRace)
{
    Runtime rt;
    auto q = rt.addLooper("main");
    auto x = rt.var("x");
    auto s = rt.site("s", trace::Frame::User);
    rt.spawnWorker("w1", Script().post(q, Script().write(x, s)));
    rt.spawnWorker("w2", Script().post(q, Script().write(x, s)));
    Trace tr = rt.run();
    expectMatchesGold(tr);
    EXPECT_EQ(detectorSet(tr).size(), 1u);
}

TEST(EventRacer, SignalWaitForkJoin)
{
    Runtime rt;
    auto x = rt.var("x");
    auto y = rt.var("y");
    auto s = rt.site("s", trace::Frame::User);
    auto h = rt.handle("m");
    auto tok = rt.token();
    rt.spawnWorker("a", Script()
                            .write(x, s)
                            .signal(h)
                            .fork(tok, "c", Script().write(y, s))
                            .join(tok)
                            .read(y, s));
    rt.spawnWorker("b", Script().await(h).read(x, s));
    expectMatchesGold(rt.run());
}

TEST(EventRacer, PriorityTagsMatchGold)
{
    Runtime rt;
    auto q = rt.addLooper("main");
    auto x = rt.var("x");
    auto y = rt.var("y");
    auto s = rt.site("s", trace::Frame::User);
    rt.spawnWorker("w",
                   Script()
                       .post(q, Script().write(x, s),
                             PostOpts::delayed(100))
                       .post(q, Script().write(x, s))   // races with ^
                       .post(q, Script().write(y, s),
                             PostOpts::delayed(0, true))
                       .post(q, Script().write(y, s)));  // sync after
    expectMatchesGold(rt.run());
}

TEST(EventRacer, AtTimeMatchesGold)
{
    Runtime rt;
    auto q = rt.addLooper("main");
    auto x = rt.var("x");
    auto s = rt.site("s", trace::Frame::User);
    rt.spawnWorker("w",
                   Script()
                       .post(q, Script().write(x, s),
                             PostOpts::at(100))
                       .post(q, Script().write(x, s),
                             PostOpts::at(50))      // unordered
                       .post(q, Script().write(x, s),
                             PostOpts::at(150)));   // after both? no:
    // only ordered after the t=100 one (50 < 100 <= 150 by Table 1
    // both (AtTime,Sync): time<=).
    expectMatchesGold(rt.run());
}

TEST(EventRacer, AtomicRuleMatchesGold)
{
    Runtime rt;
    auto q = rt.addLooper("main");
    auto before = rt.var("before");
    auto after = rt.var("after");
    auto s = rt.site("s", trace::Frame::User);
    auto h = rt.handle("m");
    rt.spawnWorker("w1", Script().post(q, Script()
                                              .write(before, s)
                                              .signal(h)
                                              .write(after, s)));
    rt.spawnWorker("w2", Script().sleep(1).post(
                             q, Script()
                                    .read(before, s)
                                    .await(h)
                                    .read(after, s)));
    expectMatchesGold(rt.run());
}

TEST(EventRacer, AtFrontRuleMatchesGold)
{
    Runtime rt;
    auto q = rt.addLooper("main");
    auto x = rt.var("x");
    auto s = rt.site("s", trace::Frame::User);
    auto h = rt.handle("h");
    rt.spawnWorker("w",
                   Script()
                       .post(q, Script().await(h))
                       .post(q, Script().read(x, s),
                             PostOpts::delayed(2000))
                       .post(q, Script().write(x, s),
                             PostOpts::atFront())
                       .signal(h));
    expectMatchesGold(rt.run());
}

TEST(EventRacer, RemovedEventMatchesGold)
{
    Runtime rt;
    auto q = rt.addLooper("main");
    auto x = rt.var("x");
    auto s = rt.site("s", trace::Frame::User);
    auto h = rt.handle("gate");
    auto tok = rt.token();
    rt.spawnWorker("w",
                   Script()
                       .write(x, s)
                       .post(q, Script().await(h))
                       .post(q, Script(), PostOpts{}, tok)
                       .remove(tok)
                       .post(q, Script().read(x, s))
                       .signal(h));
    expectMatchesGold(rt.run());
}

TEST(EventRacer, BinderMatchesGold)
{
    Runtime rt;
    auto q = rt.addBinderPool("ipc", 2);
    auto x = rt.var("x");
    auto s = rt.site("s", trace::Frame::User);
    rt.spawnWorker("w",
                   Script()
                       .post(q, Script().sleep(50).write(x, s))
                       .post(q, Script().write(x, s)));
    expectMatchesGold(rt.run());
}

TEST(EventRacer, PruningDoesNotChangeRaces)
{
    workload::AppProfile p;
    p.seed = 21;
    p.looperEvents = 100;
    p.spanMs = 20000;
    auto app = workload::generateApp(p);
    EventRacerConfig noPrune;
    noPrune.pruning = false;
    EXPECT_EQ(detectorSet(app.trace), detectorSet(app.trace, noPrune));
    EXPECT_EQ(detectorSet(app.trace), goldSet(app.trace));
}

TEST(EventRacer, CountersAdvance)
{
    Trace tr = workload::barcodePattern(30);
    ExactChecker checker;
    EventRacerDetector det(tr, checker);
    det.runAll();
    const GraphCounters &c = det.counters();
    EXPECT_GT(c.nodes, 100u);
    EXPECT_GT(c.edges, c.nodes);
    EXPECT_GT(c.traversalVisits, 0u);
    EXPECT_GT(c.predecessorsFound, 0u);
    EXPECT_GT(det.metadataBytes(), 10000u);
}

TEST(EventRacer, BarcodePatternDefeatsPruning)
{
    // The Fig 9b shape: traversal visits grow super-linearly with the
    // chain length because AtTime events prune nothing.
    auto visitsFor = [](unsigned n) {
        Trace tr = workload::barcodePattern(n);
        ExactChecker checker;
        EventRacerDetector det(tr, checker);
        det.runAll();
        return det.counters().traversalVisits;
    };
    std::uint64_t v20 = visitsFor(20);
    std::uint64_t v80 = visitsFor(80);
    // 4x events -> much more than 4x visits (quadratic-ish).
    EXPECT_GT(v80, v20 * 8);
}

TEST(EventRacer, MemoryGrowsWithTraceLength)
{
    auto memFor = [](unsigned streams) {
        Trace tr = workload::pingPongPattern(streams, 3);
        ExactChecker checker;
        EventRacerDetector det(tr, checker);
        det.runAll();
        return det.metadataBytes();
    };
    EXPECT_GT(memFor(200), 2 * memFor(50));
}

/** Parameterized sweep: on random generated apps the baseline+exact
 * checker must equal the gold oracle exactly. */
class EventRacerSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(EventRacerSweep, MatchesGoldOnGeneratedApp)
{
    workload::AppProfile p;
    p.seed = static_cast<std::uint64_t>(GetParam());
    p.looperEvents = 70 + (GetParam() % 5) * 25;
    p.binderEvents = 8;
    p.spanMs = 15000 + (GetParam() % 3) * 10000;
    p.workers = 2 + (GetParam() % 4);
    p.loopers = 1 + (GetParam() % 3);
    auto app = workload::generateApp(p);
    expectMatchesGold(app.trace);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventRacerSweep,
                         ::testing::Range(1, 21));

} // namespace
} // namespace asyncclock::graph
