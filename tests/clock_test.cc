/**
 * @file
 * Unit tests for sparse vector clocks and epochs.
 */

#include <gtest/gtest.h>

#include "clock/vector_clock.hh"
#include "support/rng.hh"

namespace asyncclock::clock {
namespace {

TEST(VectorClock, DefaultIsBottom)
{
    VectorClock vc;
    EXPECT_EQ(vc.get(0), 0u);
    EXPECT_EQ(vc.get(12345), 0u);
    EXPECT_EQ(vc.size(), 0u);
    EXPECT_TRUE(vc.knows(Epoch{7, 0}));   // tick 0 is always known
    EXPECT_FALSE(vc.knows(Epoch{7, 1}));
}

TEST(VectorClock, RaiseIsMonotone)
{
    VectorClock vc;
    vc.raise(3, 10);
    EXPECT_EQ(vc.get(3), 10u);
    vc.raise(3, 5);
    EXPECT_EQ(vc.get(3), 10u);
    vc.raise(3, 12);
    EXPECT_EQ(vc.get(3), 12u);
    EXPECT_EQ(vc.size(), 1u);
    vc.raise(9, 0);  // raising to 0 is a no-op, stays sparse
    EXPECT_EQ(vc.size(), 1u);
}

TEST(VectorClock, JoinIsPointwiseMax)
{
    VectorClock a, b;
    a.raise(0, 5);
    a.raise(1, 2);
    b.raise(1, 7);
    b.raise(2, 1);
    a.joinWith(b);
    EXPECT_EQ(a.get(0), 5u);
    EXPECT_EQ(a.get(1), 7u);
    EXPECT_EQ(a.get(2), 1u);
    EXPECT_EQ(b.get(0), 0u);  // b untouched
}

TEST(VectorClock, LeqAndEquality)
{
    VectorClock a, b;
    a.raise(0, 3);
    b.raise(0, 3);
    b.raise(1, 1);
    EXPECT_TRUE(a.leq(b));
    EXPECT_FALSE(b.leq(a));
    EXPECT_FALSE(a == b);
    a.raise(1, 1);
    EXPECT_TRUE(a == b);
    EXPECT_TRUE(a.leq(b) && b.leq(a));
}

TEST(VectorClock, KnowsEpoch)
{
    VectorClock vc;
    vc.raise(4, 9);
    EXPECT_TRUE(vc.knows(Epoch{4, 9}));
    EXPECT_TRUE(vc.knows(Epoch{4, 3}));
    EXPECT_FALSE(vc.knows(Epoch{4, 10}));
    EXPECT_FALSE(vc.knows(Epoch{5, 1}));
}

TEST(VectorClock, EraseIfDropsEntries)
{
    VectorClock vc;
    for (ChainId c = 0; c < 10; ++c)
        vc.raise(c, c + 1);
    vc.eraseIf([](ChainId c, Tick &) { return c >= 5; });
    EXPECT_EQ(vc.size(), 5u);
    EXPECT_EQ(vc.get(4), 5u);
    EXPECT_EQ(vc.get(7), 0u);
}

TEST(VectorClock, JoinPropertiesRandomized)
{
    // Join must be commutative, associative, idempotent; leq must be
    // consistent with join (a.leq(b) iff join(a,b) == b).
    asyncclock::Rng r(77);
    for (int iter = 0; iter < 200; ++iter) {
        auto randomClock = [&]() {
            VectorClock vc;
            int n = static_cast<int>(r.below(6));
            for (int i = 0; i < n; ++i) {
                vc.raise(static_cast<ChainId>(r.below(8)),
                         static_cast<Tick>(r.range(1, 9)));
            }
            return vc;
        };
        VectorClock a = randomClock(), b = randomClock(),
                    c = randomClock();

        VectorClock ab = a;
        ab.joinWith(b);
        VectorClock ba = b;
        ba.joinWith(a);
        EXPECT_TRUE(ab == ba);

        VectorClock abc1 = ab;
        abc1.joinWith(c);
        VectorClock bc = b;
        bc.joinWith(c);
        VectorClock abc2 = a;
        abc2.joinWith(bc);
        EXPECT_TRUE(abc1 == abc2);

        VectorClock aa = a;
        aa.joinWith(a);
        EXPECT_TRUE(aa == a);

        EXPECT_TRUE(a.leq(ab));
        EXPECT_TRUE(b.leq(ab));
        if (a.leq(b)) {
            VectorClock j = a;
            j.joinWith(b);
            EXPECT_TRUE(j == b);
        }
    }
}

TEST(VectorClock, ToStringIsSortedAndStable)
{
    VectorClock vc;
    vc.raise(2, 7);
    vc.raise(0, 3);
    EXPECT_EQ(vc.toString(), "{0:3, 2:7}");
    EXPECT_EQ(VectorClock().toString(), "{}");
}

TEST(VectorClock, ByteSizeTracksGrowth)
{
    VectorClock vc;
    EXPECT_EQ(vc.byteSize(), 0u);
    for (ChainId c = 0; c < 64; ++c)
        vc.raise(c, 1);
    EXPECT_GE(vc.byteSize(), 64 * sizeof(Tick));
}

} // namespace
} // namespace asyncclock::clock
