/**
 * @file
 * Tests for the AsyncClock detector.
 *
 * Correctness: with reclamation on but the time window off, the
 * detector must report exactly the gold oracle's race set — on every
 * causality feature and across a parameterized sweep of generated
 * apps (the paper's soundness claim in section 7.3: AsyncClock with
 * no window and EventRacer's graph algorithm find the same races).
 *
 * Scalability: reference counting and multi-path reduction must
 * actually reclaim events; the time window must bound live metadata
 * and chains; reclamation must never change the reported races.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/detector.hh"
#include "gold/closure.hh"
#include "graph/eventracer.hh"
#include "report/checker.hh"
#include "runtime/runtime.hh"
#include "workload/workload.hh"

namespace asyncclock::core {
namespace {

using runtime::PostOpts;
using runtime::Runtime;
using runtime::Script;
using trace::Trace;

using RaceSet = std::set<std::pair<trace::OpId, trace::OpId>>;

/** Detector config without the window (exact mode). */
DetectorConfig
exactConfig()
{
    DetectorConfig cfg;
    cfg.windowMs = 0;
    return cfg;
}

RaceSet
goldSet(const Trace &tr)
{
    gold::Closure hb(tr);
    RaceSet out;
    for (const auto &r : hb.races())
        out.insert({r.first, r.second});
    return out;
}

RaceSet
asyncClockSet(const Trace &tr, DetectorConfig cfg = exactConfig())
{
    report::ExactChecker checker;
    AsyncClockDetector det(tr, checker, cfg);
    det.runAll();
    RaceSet out;
    for (const auto &r : checker.races())
        out.insert({r.prevOp, r.curOp});
    return out;
}

void
expectMatchesGold(const Trace &tr, DetectorConfig cfg = exactConfig())
{
    ASSERT_EQ(tr.validate(true), "");
    EXPECT_EQ(asyncClockSet(tr, cfg), goldSet(tr));
}

// ----------------------------------------------------------------
// Feature-by-feature correctness (window off).
// ----------------------------------------------------------------

TEST(AsyncClock, FifoOrderingNoRace)
{
    Runtime rt;
    auto q = rt.addLooper("main");
    auto x = rt.var("x");
    auto s = rt.site("s", trace::Frame::User);
    rt.spawnWorker("w", Script()
                            .post(q, Script().write(x, s))
                            .post(q, Script().write(x, s)));
    expectMatchesGold(rt.run());
}

TEST(AsyncClock, UnorderedEventsRace)
{
    Runtime rt;
    auto q = rt.addLooper("main");
    auto x = rt.var("x");
    auto s = rt.site("s", trace::Frame::User);
    rt.spawnWorker("w1", Script().post(q, Script().write(x, s)));
    rt.spawnWorker("w2", Script().post(q, Script().write(x, s)));
    Trace tr = rt.run();
    expectMatchesGold(tr);
    EXPECT_EQ(asyncClockSet(tr).size(), 1u);
}

TEST(AsyncClock, Figure5Shape)
{
    // Two workers synchronized by a handle; events A, B, D, C, E as
    // in Fig 5: D must inherit both A and B; E only C.
    Runtime rt;
    auto q = rt.addLooper("main");
    auto a = rt.var("a"), b = rt.var("b"), c = rt.var("c");
    auto s = rt.site("s", trace::Frame::User);
    auto m = rt.handle("m");
    // Fig 5: T2 sends B then signals m; T1 waits on m between sending
    // A and D, so the AsyncClock at send(D) holds both A and B; the
    // AsyncClock at send(E) holds only C.
    rt.spawnWorker("t1", Script()
                             .post(q, Script().write(a, s))  // A
                             .await(m)
                             .post(q, Script()
                                          .read(a, s)
                                          .read(b, s)));     // D
    rt.spawnWorker("t2", Script()
                             .post(q, Script().write(b, s))  // B
                             .signal(m)
                             .post(q, Script().write(c, s))  // C
                             .sleep(100)
                             .post(q, Script().read(c, s))); // E
    Trace tr = rt.run();
    expectMatchesGold(tr);
    EXPECT_TRUE(asyncClockSet(tr).empty());
}

TEST(AsyncClock, CrossQueueChains)
{
    Runtime rt;
    auto q1 = rt.addLooper("main");
    auto q2 = rt.addLooper("bg");
    auto x = rt.var("x");
    auto s = rt.site("s", trace::Frame::User);
    rt.spawnWorker(
        "w", Script()
                 .write(x, s)
                 .post(q1, Script().post(
                               q2, Script().post(
                                       q1, Script().read(x, s)))));
    expectMatchesGold(rt.run());
}

TEST(AsyncClock, ForkJoinSignalWait)
{
    Runtime rt;
    auto x = rt.var("x"), y = rt.var("y");
    auto s = rt.site("s", trace::Frame::User);
    auto h = rt.handle("m");
    auto tok = rt.token();
    rt.spawnWorker("a", Script()
                            .write(x, s)
                            .signal(h)
                            .fork(tok, "c", Script().write(y, s))
                            .join(tok)
                            .read(y, s));
    rt.spawnWorker("b", Script().await(h).read(x, s));
    expectMatchesGold(rt.run());
}

TEST(AsyncClock, PriorityTags)
{
    Runtime rt;
    auto q = rt.addLooper("main");
    auto x = rt.var("x"), y = rt.var("y"), z = rt.var("z");
    auto s = rt.site("s", trace::Frame::User);
    rt.spawnWorker("w",
                   Script()
                       .post(q, Script().write(x, s),
                             PostOpts::delayed(100))
                       .post(q, Script().write(x, s))  // races
                       .post(q, Script().write(y, s),
                             PostOpts::delayed(0, true))
                       .post(q, Script().write(y, s))  // ordered
                       .post(q, Script().write(z, s),
                             PostOpts::at(500))
                       .post(q, Script().write(z, s),
                             PostOpts::at(400)));  // races
    expectMatchesGold(rt.run());
}

TEST(AsyncClock, AtomicRule)
{
    Runtime rt;
    auto q = rt.addLooper("main");
    auto before = rt.var("before"), after = rt.var("after");
    auto s = rt.site("s", trace::Frame::User);
    auto h = rt.handle("m");
    rt.spawnWorker("w1", Script().post(q, Script()
                                              .write(before, s)
                                              .signal(h)
                                              .write(after, s)));
    rt.spawnWorker("w2", Script().sleep(1).post(
                             q, Script()
                                    .read(before, s)
                                    .await(h)
                                    .read(after, s)));
    Trace tr = rt.run();
    expectMatchesGold(tr);
    EXPECT_EQ(asyncClockSet(tr).size(), 1u);  // only `before`
}

TEST(AsyncClock, AtFrontRule)
{
    Runtime rt;
    auto q = rt.addLooper("main");
    auto x = rt.var("x");
    auto s = rt.site("s", trace::Frame::User);
    auto h = rt.handle("h");
    rt.spawnWorker("w",
                   Script()
                       .post(q, Script().await(h))
                       .post(q, Script().read(x, s),
                             PostOpts::delayed(2000))
                       .post(q, Script().write(x, s),
                             PostOpts::atFront())
                       .signal(h));
    Trace tr = rt.run();
    expectMatchesGold(tr);
    EXPECT_TRUE(asyncClockSet(tr).empty());
}

TEST(AsyncClock, RemovedEvents)
{
    Runtime rt;
    auto q = rt.addLooper("main");
    auto x = rt.var("x");
    auto s = rt.site("s", trace::Frame::User);
    auto h = rt.handle("gate");
    auto tok = rt.token();
    rt.spawnWorker("w",
                   Script()
                       .write(x, s)
                       .post(q, Script().await(h))
                       .post(q, Script(), PostOpts{}, tok)
                       .remove(tok)
                       .post(q, Script().read(x, s))
                       .signal(h));
    expectMatchesGold(rt.run());
}

TEST(AsyncClock, BinderEvents)
{
    Runtime rt;
    auto q = rt.addBinderPool("ipc", 2);
    auto x = rt.var("x");
    auto s = rt.site("s", trace::Frame::User);
    rt.spawnWorker("w",
                   Script()
                       .post(q, Script().sleep(50).write(x, s))
                       .post(q, Script().write(x, s)));
    Trace tr = rt.run();
    expectMatchesGold(tr);
    EXPECT_EQ(asyncClockSet(tr).size(), 1u);
}

TEST(AsyncClock, PatternsMatchGold)
{
    expectMatchesGold(workload::barcodePattern(25));
    expectMatchesGold(workload::pingPongPattern(6, 4));
    expectMatchesGold(workload::multiPathPattern(10));
}

// ----------------------------------------------------------------
// Configuration invariance: reclamation must not change results.
// ----------------------------------------------------------------

TEST(AsyncClock, ReclamationInvariant)
{
    workload::AppProfile p;
    p.seed = 33;
    p.looperEvents = 150;
    p.spanMs = 30000;
    auto app = workload::generateApp(p);
    RaceSet gold = goldSet(app.trace);

    for (bool reclaim : {false, true}) {
        for (bool multipath : {false, true}) {
            for (auto mode : {ChainMode::Greedy, ChainMode::Fifo}) {
                DetectorConfig cfg = exactConfig();
                cfg.reclaimHeirless = reclaim;
                cfg.multiPathReduction = multipath;
                cfg.chainMode = mode;
                EXPECT_EQ(asyncClockSet(app.trace, cfg), gold)
                    << "reclaim=" << reclaim << " mp=" << multipath
                    << " fifo=" << (mode == ChainMode::Fifo);
            }
        }
    }
}

// ----------------------------------------------------------------
// Scalability machinery.
// ----------------------------------------------------------------

TEST(AsyncClock, RefcountReclaimsFifoStreams)
{
    // A long FIFO stream: every event is displaced from the sender's
    // AsyncClock (and its list record dominance-dropped) by the next
    // send, so almost everything should be reclaimed by refcount.
    Runtime rt;
    auto q = rt.addLooper("main");
    Script w;
    for (int i = 0; i < 300; ++i)
        w.post(q, Script());
    rt.spawnWorker("w", std::move(w));
    Trace tr = rt.run();

    report::ExactChecker checker;
    DetectorConfig cfg = exactConfig();
    cfg.gcIntervalOps = 128;
    AsyncClockDetector det(tr, checker, cfg);
    det.runAll();
    EXPECT_EQ(det.counters().eventsSeen, 300u);
    // The vast majority reclaimed before the end of the pass.
    EXPECT_LT(det.counters().eventsLive, 20u);
    EXPECT_GT(det.counters().reclaimedRefcount, 250u);
}

TEST(AsyncClock, NoReclaimKeepsEverything)
{
    Runtime rt;
    auto q = rt.addLooper("main");
    Script w;
    for (int i = 0; i < 200; ++i)
        w.post(q, Script());
    rt.spawnWorker("w", std::move(w));
    Trace tr = rt.run();

    report::ExactChecker checker;
    DetectorConfig cfg = exactConfig();
    cfg.reclaimHeirless = false;
    cfg.multiPathReduction = false;
    AsyncClockDetector det(tr, checker, cfg);
    det.runAll();
    EXPECT_EQ(det.counters().eventsLive, 200u);
}

TEST(AsyncClock, MultiPathReductionFires)
{
    Trace tr = workload::multiPathPattern(40);
    report::ExactChecker c1, c2;

    DetectorConfig noMp = exactConfig();
    noMp.multiPathReduction = false;
    noMp.gcIntervalOps = 64;
    AsyncClockDetector d1(tr, c1, noMp);
    d1.runAll();

    DetectorConfig mp = exactConfig();
    mp.gcIntervalOps = 64;
    AsyncClockDetector d2(tr, c2, mp);
    d2.runAll();

    EXPECT_GT(d2.counters().reclaimedMultiPath, 20u);
    // Multi-path reduction strictly reduces live metadata on this
    // pattern (Fig 6b events are heirless but have refcount 1 > 0).
    EXPECT_LT(d2.counters().eventsLive, d1.counters().eventsLive);
}

TEST(AsyncClock, WindowBoundsMemoryOnPingPong)
{
    // Fig 6a shape: without a window, non-heirless events accumulate;
    // with a window, live metadata is bounded.
    Trace tr = workload::pingPongPattern(400, 3);

    report::ExactChecker c1;
    AsyncClockDetector noWindow(tr, c1, exactConfig());
    noWindow.runAll();

    report::ExactChecker c2;
    DetectorConfig win = exactConfig();
    win.windowMs = 200;  // tiny window for the test
    win.gcIntervalOps = 128;
    AsyncClockDetector windowed(tr, c2, win);
    windowed.runAll();

    EXPECT_GT(windowed.counters().invalidatedByWindow, 100u);
    EXPECT_LT(windowed.counters().eventsLive,
              noWindow.counters().eventsLive / 4);
}

TEST(AsyncClock, WindowRetiresAndReusesChains)
{
    // Many short-lived workers spread over time, each creating its
    // own level-1 FIFO chain. With a small window, old chains retire
    // and later workers' events reuse them, bounding the chain count.
    Runtime rt;
    auto q = rt.addLooper("main");
    for (int i = 0; i < 60; ++i) {
        rt.spawnWorker("w" + std::to_string(i),
                       Script().post(q, Script()).post(q, Script()),
                       static_cast<std::uint64_t>(i) * 1000);
    }
    Trace tr = rt.run();

    report::ExactChecker c1;
    AsyncClockDetector noWindow(tr, c1, exactConfig());
    noWindow.runAll();

    report::ExactChecker c2;
    DetectorConfig win = exactConfig();
    win.windowMs = 2000;
    win.gcIntervalOps = 64;
    AsyncClockDetector windowed(tr, c2, win);
    windowed.runAll();

    EXPECT_GT(windowed.counters().chainsReused, 10u);
    EXPECT_LT(windowed.numChains(), noWindow.numChains());
}

TEST(AsyncClock, WindowOnlyRemovesFarApartRaces)
{
    // Two racy pairs: one close in time, one far apart. A window
    // between the two gaps must keep the close race and may assume
    // order only for the far one.
    Runtime rt;
    auto q = rt.addLooper("main");
    auto nearVar = rt.var("near"), farVar = rt.var("far");
    auto s = rt.site("s", trace::Frame::User);
    rt.spawnWorker("a1", Script().post(q, Script().write(nearVar, s)),
                   1000);
    rt.spawnWorker("a2", Script().post(q, Script().write(nearVar, s)),
                   1200);
    rt.spawnWorker("b1", Script().post(q, Script().write(farVar, s)),
                   1000);
    rt.spawnWorker("b2", Script().post(q, Script().write(farVar, s)),
                   60000);
    Trace tr = rt.run();
    ASSERT_EQ(tr.validate(true), "");
    ASSERT_EQ(goldSet(tr).size(), 2u);

    DetectorConfig win = exactConfig();
    win.windowMs = 10000;
    RaceSet withWindow = asyncClockSet(tr, win);
    ASSERT_EQ(withWindow.size(), 1u);
    // The surviving race is on `near`.
    EXPECT_EQ(tr.op(withWindow.begin()->first).target, nearVar);
}

TEST(AsyncClock, FifoChainDecompositionLevels)
{
    // Worker -> level-1 -> level-2 -> level-3 chains.
    Runtime rt;
    auto q = rt.addLooper("main");
    Script w;
    for (int i = 0; i < 20; ++i) {
        w.post(q, Script().post(
                      q, Script().post(q, Script())));  // 3 levels
    }
    rt.spawnWorker("w", std::move(w));
    Trace tr = rt.run();

    report::ExactChecker checker;
    AsyncClockDetector det(tr, checker, exactConfig());
    det.runAll();
    const auto &c = det.counters();
    EXPECT_EQ(c.fifoLevel[1], 20u);
    EXPECT_EQ(c.fifoLevel[2], 20u);
    EXPECT_EQ(c.fifoLevel[3], 20u);
    EXPECT_EQ(c.fifoLevel[0], 0u);
    // All sixty events fit in 3 chains + 2 thread chains.
    EXPECT_LE(det.numChains(), 6u);
}

TEST(AsyncClock, GreedyUsesMoreChainsThanFifo)
{
    Trace tr = workload::barcodePattern(60);
    report::ExactChecker c1, c2;
    DetectorConfig greedy = exactConfig();
    greedy.chainMode = ChainMode::Greedy;
    AsyncClockDetector d1(tr, c1, greedy);
    d1.runAll();
    AsyncClockDetector d2(tr, c2, exactConfig());
    d2.runAll();
    // FIFO decomposition finds chains by table lookup; the chain
    // count itself is comparable to greedy's (section 7.6 reports
    // modest 5-10% wins), so allow a small slack either way.
    EXPECT_LE(d2.numChains(), d1.numChains() + 3);
    EXPECT_GT(d2.counters().fifoLevel[1], 0u);
}

TEST(AsyncClock, EarlyStoppingLimitsWalks)
{
    // Long FIFO stream: each begin's walk must early-stop at the
    // previous FIFO send, keeping total walk steps linear.
    Runtime rt;
    auto q = rt.addLooper("main");
    Script w;
    for (int i = 0; i < 400; ++i)
        w.post(q, Script());
    rt.spawnWorker("w", std::move(w));
    Trace tr = rt.run();
    report::ExactChecker checker;
    AsyncClockDetector det(tr, checker, exactConfig());
    det.runAll();
    EXPECT_LT(det.counters().walkSteps, 1000u);
    EXPECT_GT(det.counters().walkEarlyStops, 300u);
}

TEST(AsyncClock, MemoryBytesSane)
{
    Trace tr = workload::pingPongPattern(50, 3);
    report::ExactChecker checker;
    AsyncClockDetector det(tr, checker, exactConfig());
    MemStats stats;
    det.runAll(&stats, 64);
    EXPECT_GT(det.metadataBytes(), 1000u);
    EXPECT_GT(stats.peakTotal(), 1000u);
    EXPECT_GT(stats.peak(MemCat::AsyncClock), 0u);
}

TEST(AsyncClock, DominanceDropKeepsNonAdjacentPredecessors)
{
    // Regression: worker posts X (fifo), V (delayed), signals h; a
    // second worker waits on h and posts E (fifo) *whose AsyncClock
    // entry for the first worker's chain is V*. The first worker then
    // posts W (fifo). W must NOT dominance-drop X's async-before
    // record (V sits between them): E's resolution walks below V and
    // still needs X — end(X) happens-before begin(E) by Rule FIFO.
    Runtime rt;
    auto q = rt.addLooper("main");
    auto x = rt.var("x");
    auto s = rt.site("s", trace::Frame::User);
    auto h = rt.handle("h");
    auto gate = rt.handle("gate");
    rt.spawnWorker("w1",
                   Script()
                       .post(q, Script().write(x, s))   // X = e0
                       .post(q, Script(), PostOpts::delayed(5000)) // V
                       .signal(h)
                       .post(q, Script())               // W = e2
                       .signal(gate));
    rt.spawnWorker("w2", Script()
                             .await(h)
                             .await(gate)  // ensure W sent first
                             .post(q, Script().read(x, s)));  // E
    Trace tr = rt.run();
    expectMatchesGold(tr);
    EXPECT_TRUE(asyncClockSet(tr).empty());  // X hb E via FIFO
}

TEST(AsyncClock, Case2EarlyStoppingOnAtTimeChains)
{
    // Increasing AtTime constraints from one chain: each resolution
    // stops at the previous decode (prefix-max), keeping total walk
    // steps linear — the paper's answer to the Fig 9b pattern.
    Trace tr = workload::barcodePattern(200);
    report::ExactChecker checker;
    AsyncClockDetector det(tr, checker, exactConfig());
    det.runAll();
    EXPECT_LT(det.counters().walkSteps, 2000u);
    EXPECT_GT(det.counters().walkEarlyStops, 150u);
    EXPECT_LE(det.numChains(), 10u);
}

// ----------------------------------------------------------------
// Triple cross-validation sweep on generated apps.
// ----------------------------------------------------------------

class AsyncClockSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(AsyncClockSweep, MatchesGoldAndBaseline)
{
    workload::AppProfile p;
    p.seed = 100 + static_cast<std::uint64_t>(GetParam());
    p.looperEvents = 60 + (GetParam() % 7) * 20;
    p.binderEvents = 5 + (GetParam() % 3) * 5;
    p.spanMs = 15000 + (GetParam() % 4) * 10000;
    p.workers = 2 + (GetParam() % 4);
    p.loopers = 1 + (GetParam() % 3);
    auto app = workload::generateApp(p);
    ASSERT_EQ(app.trace.validate(true), "");

    RaceSet gold = goldSet(app.trace);
    EXPECT_EQ(asyncClockSet(app.trace), gold) << "vs gold";

    report::ExactChecker erChecker;
    graph::EventRacerDetector er(app.trace, erChecker);
    er.runAll();
    RaceSet erSet;
    for (const auto &r : erChecker.races())
        erSet.insert({r.prevOp, r.curOp});
    EXPECT_EQ(erSet, gold) << "baseline vs gold";
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsyncClockSweep,
                         ::testing::Range(1, 26));

/** Chaos sweep: dense shared-state traces exercising every rule at
 * once (priority tags, barriers, at-front, removal, binder, fork/
 * join) must still triple-match, and windowed runs must stay subsets
 * of the exact race set. */
class ChaosSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(ChaosSweep, TripleMatchAndWindowSubset)
{
    Trace tr = workload::chaosTrace(
        static_cast<std::uint64_t>(GetParam()),
        40 + (GetParam() % 4) * 15);
    ASSERT_EQ(tr.validate(true), "");

    RaceSet gold = goldSet(tr);
    EXPECT_EQ(asyncClockSet(tr), gold) << "AsyncClock vs gold";

    report::ExactChecker erChecker;
    graph::EventRacerDetector er(tr, erChecker);
    er.runAll();
    RaceSet erSet;
    for (const auto &r : erChecker.races())
        erSet.insert({r.prevOp, r.curOp});
    EXPECT_EQ(erSet, gold) << "baseline vs gold";

    // Window subset property under heavy sharing.
    DetectorConfig win = exactConfig();
    win.windowMs = 500;
    win.gcIntervalOps = 256;
    for (const auto &race : asyncClockSet(tr, win))
        EXPECT_TRUE(gold.count(race)) << "window invented a race";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSweep,
                         ::testing::Range(1, 61));

} // namespace
} // namespace asyncclock::core
