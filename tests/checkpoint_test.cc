/**
 * @file
 * Checkpoint/resume correctness: FastTrack state round-trips exactly;
 * a run resumed from any checkpoint produces the identical race list
 * an uninterrupted run produces (the logical-snapshot contract:
 * deterministic detector replay + exact checker restore + the
 * ResumeFilter discarding already-checked accesses); and damaged
 * checkpoint files yield structured errors, never partial restores.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/detector.hh"
#include "report/checkpoint.hh"
#include "report/fasttrack.hh"
#include "trace/trace_io.hh"
#include "workload/workload.hh"

namespace asyncclock {
namespace {

using report::FastTrackChecker;
using report::RaceReport;
using report::ResumeFilter;
using trace::Trace;

workload::AppProfile
profile(std::uint64_t seed, unsigned events)
{
    workload::AppProfile p;
    p.seed = seed;
    p.looperEvents = events;
    return p;
}

void
expectSameRaces(const std::vector<RaceReport> &a,
                const std::vector<RaceReport> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].var, b[i].var) << "race " << i;
        EXPECT_EQ(a[i].prevOp, b[i].prevOp) << "race " << i;
        EXPECT_EQ(a[i].curOp, b[i].curOp) << "race " << i;
        EXPECT_EQ(a[i].prevSite, b[i].prevSite) << "race " << i;
        EXPECT_EQ(a[i].curSite, b[i].curSite) << "race " << i;
        EXPECT_EQ(a[i].prevWrite, b[i].prevWrite) << "race " << i;
        EXPECT_EQ(a[i].curWrite, b[i].curWrite) << "race " << i;
    }
}

std::string
tempPath(const char *name)
{
    return testing::TempDir() + name;
}

// ----- checker state round-trip ---------------------------------------

TEST(FastTrackState, RoundTripsExactly)
{
    auto app = workload::generateApp(profile(7, 150));
    FastTrackChecker original;
    core::AsyncClockDetector det(app.trace, original);
    det.runAll();

    std::stringstream blob;
    ASSERT_TRUE(original.saveState(blob));
    FastTrackChecker restored;
    ASSERT_TRUE(restored.loadState(blob));

    expectSameRaces(original.races(), restored.races());
    EXPECT_EQ(original.racesFound(), restored.racesFound());
    // Exactness: re-serializing the restored checker reproduces the
    // original blob byte for byte. (byteSize() is not compared — it
    // reflects container capacity, and a tight rebuild is smaller.)
    std::stringstream reblob;
    ASSERT_TRUE(restored.saveState(reblob));
    EXPECT_EQ(blob.str(), reblob.str());
}

TEST(FastTrackState, LoadRejectsTruncationWithoutClobbering)
{
    auto app = workload::generateApp(profile(8, 100));
    FastTrackChecker original;
    core::AsyncClockDetector det(app.trace, original);
    det.runAll();
    ASSERT_GT(original.racesFound(), 0u);

    std::stringstream blob;
    ASSERT_TRUE(original.saveState(blob));
    std::string bytes = blob.str();

    // Pre-load the victim with real state, then feed it truncated
    // blobs: every cut must fail structurally and leave the existing
    // state untouched (commit-on-success contract).
    FastTrackChecker victim;
    {
        std::stringstream again(bytes);
        ASSERT_TRUE(victim.loadState(again));
    }
    std::uint64_t racesBefore = victim.racesFound();
    for (std::size_t cut :
         {std::size_t(0), std::size_t(7), bytes.size() / 2,
          bytes.size() - 1}) {
        std::stringstream cutBlob(bytes.substr(0, cut));
        Status st = victim.loadState(cutBlob);
        EXPECT_FALSE(st.isOk()) << "cut at " << cut;
        EXPECT_EQ(victim.racesFound(), racesBefore)
            << "state clobbered by failed load (cut " << cut << ")";
    }
}

// ----- checkpoint files -----------------------------------------------

TEST(CheckpointFile, SaveLoadRoundTripsMetaAndChecker)
{
    auto app = workload::generateApp(profile(9, 120));
    FastTrackChecker checker;
    core::AsyncClockDetector det(app.trace, checker);
    det.runAll();

    report::CheckpointMeta meta;
    meta.opsProcessed = 4242;
    meta.accessesChecked = 999;
    meta.traceBytes = 123456;
    meta.traceHash = 0xdeadbeefcafef00dull;
    std::string path = tempPath("ckpt_roundtrip.accp");
    ASSERT_TRUE(report::saveCheckpoint(path, meta, checker));

    FastTrackChecker restored;
    auto loaded = report::loadCheckpoint(path, restored);
    ASSERT_TRUE(loaded) << loaded.status().toString();
    EXPECT_EQ(loaded.value().opsProcessed, meta.opsProcessed);
    EXPECT_EQ(loaded.value().accessesChecked, meta.accessesChecked);
    EXPECT_EQ(loaded.value().traceBytes, meta.traceBytes);
    EXPECT_EQ(loaded.value().traceHash, meta.traceHash);
    expectSameRaces(checker.races(), restored.races());
    std::remove(path.c_str());
}

TEST(CheckpointFile, DamagedFilesYieldStructuredErrors)
{
    FastTrackChecker checker;
    report::CheckpointMeta meta;
    std::string path = tempPath("ckpt_damage.accp");
    ASSERT_TRUE(report::saveCheckpoint(path, meta, checker));
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();

    auto writeBytes = [&](const std::string &data) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(data.data(),
                  static_cast<std::streamsize>(data.size()));
    };

    FastTrackChecker sink;

    std::string badMagic = bytes;
    badMagic[0] = 'X';
    writeBytes(badMagic);
    auto r1 = report::loadCheckpoint(path, sink);
    ASSERT_FALSE(r1);
    EXPECT_EQ(r1.status().code(), ErrCode::ParseError);

    std::string badVersion = bytes;
    badVersion[4] = char(0x7f);
    writeBytes(badVersion);
    auto r2 = report::loadCheckpoint(path, sink);
    ASSERT_FALSE(r2);
    EXPECT_EQ(r2.status().code(), ErrCode::Unsupported);

    writeBytes(bytes.substr(0, 10));
    auto r3 = report::loadCheckpoint(path, sink);
    ASSERT_FALSE(r3);
    EXPECT_EQ(r3.status().code(), ErrCode::Truncated);

    auto r4 = report::loadCheckpoint(tempPath("ckpt_missing.accp"),
                                     sink);
    ASSERT_FALSE(r4);
    EXPECT_EQ(r4.status().code(), ErrCode::IoError);
    std::remove(path.c_str());
}

TEST(CheckpointFile, TraceIdentityIsContentSensitive)
{
    std::string pa = tempPath("ident_a.trace");
    std::string pb = tempPath("ident_b.trace");
    {
        std::ofstream a(pa, std::ios::binary);
        a << "identical prefix, then A";
        std::ofstream b(pb, std::ios::binary);
        b << "identical prefix, then B";
    }
    auto ia = report::traceIdentity(pa);
    auto ib = report::traceIdentity(pb);
    auto ia2 = report::traceIdentity(pa);
    ASSERT_TRUE(ia);
    ASSERT_TRUE(ib);
    ASSERT_TRUE(ia2);
    EXPECT_EQ(ia.value().traceBytes, ib.value().traceBytes);
    EXPECT_NE(ia.value().traceHash, ib.value().traceHash);
    EXPECT_EQ(ia.value().traceHash, ia2.value().traceHash);
    std::remove(pa.c_str());
    std::remove(pb.c_str());
}

// ----- end-to-end resume ----------------------------------------------

/** Run the detector over @p tr uninterrupted, returning the races. */
std::vector<RaceReport>
uninterruptedRaces(const Trace &tr, core::DetectorConfig cfg,
                   std::uint64_t *accessesOut = nullptr)
{
    FastTrackChecker ft;
    ResumeFilter filter(ft);
    core::AsyncClockDetector det(tr, filter, cfg);
    det.runAll();
    if (accessesOut)
        *accessesOut = filter.accessesSeen();
    return ft.races();
}

/**
 * Simulate kill-at-op-K + resume: run K ops, checkpoint, throw the
 * whole pipeline away, then rebuild from the checkpoint and run the
 * trace from op 0. Returns the resumed run's races.
 */
std::vector<RaceReport>
resumedRaces(const Trace &tr, core::DetectorConfig cfg,
             std::uint64_t killAfterOps, const std::string &path)
{
    {
        FastTrackChecker ft;
        ResumeFilter filter(ft);
        core::AsyncClockDetector det(tr, filter, cfg);
        std::uint64_t n = 0;
        while (n < killAfterOps && det.processNext())
            ++n;
        report::CheckpointMeta meta;
        meta.opsProcessed = n;
        meta.accessesChecked = filter.accessesSeen();
        EXPECT_TRUE(report::saveCheckpoint(path, meta, ft));
        // Everything from the first attempt dies here — only the
        // checkpoint file survives the "kill".
    }
    FastTrackChecker ft;
    auto loaded = report::loadCheckpoint(path, ft);
    EXPECT_TRUE(loaded) << loaded.status().toString();
    ResumeFilter filter(ft, loaded.value().accessesChecked);
    core::AsyncClockDetector det(tr, filter, cfg);
    det.runAll();
    return ft.races();
}

TEST(Resume, RacesIdenticalToUninterruptedRunAtAnyKillPoint)
{
    auto app = workload::generateApp(profile(10, 150));
    core::DetectorConfig cfg;
    std::vector<RaceReport> expected =
        uninterruptedRaces(app.trace, cfg);
    ASSERT_GT(expected.size(), 0u);

    std::string path = tempPath("ckpt_resume.accp");
    std::uint64_t total = app.trace.numOps();
    for (std::uint64_t kill :
         {total / 10, total / 3, total / 2, total - 1}) {
        SCOPED_TRACE(kill);
        expectSameRaces(expected,
                        resumedRaces(app.trace, cfg, kill, path));
    }
    std::remove(path.c_str());
}

TEST(Resume, IdenticalUnderMemoryPressureLadder)
{
    // The ladder mutates detector state (window shrinks,
    // invalidations), so resume is only sound if its decisions replay
    // identically — which they must, since the budget measure excludes
    // checker bytes.
    auto app = workload::generateApp(profile(12, 150));
    core::DetectorConfig cfg;
    cfg.memBudgetBytes = 64 * 1024;
    std::vector<RaceReport> expected =
        uninterruptedRaces(app.trace, cfg);

    std::string path = tempPath("ckpt_ladder.accp");
    std::uint64_t total = app.trace.numOps();
    expectSameRaces(expected,
                    resumedRaces(app.trace, cfg, total / 2, path));
    std::remove(path.c_str());
}

TEST(Resume, CrossBackendCheckpointsInterchange)
{
    // v2 checkpoints carry the writer's clock backend as an
    // informational tag; checker state is serialized in canonical
    // sparse form, so a checkpoint written under any backend must
    // resume under any other with an identical final race list.
    auto app = workload::generateApp(profile(11, 150));
    const clock::Backend backends[] = {clock::Backend::Sparse,
                                       clock::Backend::Cow,
                                       clock::Backend::Tree,
                                       clock::Backend::Hybrid};
    core::DetectorConfig base;
    std::vector<RaceReport> expected =
        uninterruptedRaces(app.trace, base);
    ASSERT_GT(expected.size(), 0u);

    std::string path = tempPath("ckpt_backend.accp");
    std::uint64_t kill = app.trace.numOps() / 2;
    for (clock::Backend wb : backends) {
        {
            core::DetectorConfig cfg;
            cfg.clockBackend = wb;
            FastTrackChecker ft;
            ResumeFilter filter(ft);
            core::AsyncClockDetector det(app.trace, filter, cfg);
            std::uint64_t n = 0;
            while (n < kill && det.processNext())
                ++n;
            report::CheckpointMeta meta;
            meta.opsProcessed = n;
            meta.accessesChecked = filter.accessesSeen();
            ASSERT_TRUE(report::saveCheckpoint(path, meta, ft));
        }
        for (clock::Backend rb : backends) {
            SCOPED_TRACE(std::string(clock::backendName(wb)) +
                         " -> " + clock::backendName(rb));
            core::DetectorConfig cfg;
            cfg.clockBackend = rb;
            FastTrackChecker ft;
            auto loaded = report::loadCheckpoint(path, ft);
            ASSERT_TRUE(loaded) << loaded.status().toString();
            // The tag records the writer (the detector pins the
            // process default to its configured backend).
            EXPECT_EQ(loaded.value().clockBackend, wb);
            ResumeFilter filter(ft,
                                loaded.value().accessesChecked);
            core::AsyncClockDetector det(app.trace, filter, cfg);
            det.runAll();
            expectSameRaces(expected, ft.races());
        }
    }
    std::remove(path.c_str());
}

TEST(Resume, FilterSkipsExactlyTheCheckedPrefix)
{
    auto app = workload::generateApp(profile(13, 100));
    std::uint64_t totalAccesses = 0;
    core::DetectorConfig cfg;
    uninterruptedRaces(app.trace, cfg, &totalAccesses);
    ASSERT_GT(totalAccesses, 0u);

    // A filter skipping everything forwards nothing.
    FastTrackChecker ft;
    ResumeFilter all(ft, totalAccesses);
    core::AsyncClockDetector det(app.trace, all, cfg);
    det.runAll();
    EXPECT_EQ(all.accessesSeen(), totalAccesses);
    EXPECT_FALSE(all.replaying());
    EXPECT_EQ(ft.racesFound(), 0u);
}

} // namespace
} // namespace asyncclock
