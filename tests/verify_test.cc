/**
 * @file
 * Tests for the replay-based race verification subsystem: the
 * state-diff oracle, the flipped-schedule construction, verdict
 * classification on hand-built harmful / benign / infeasible apps,
 * triage determinism, runtime-level gate replay, and agreement of
 * INFEASIBLE verdicts with the gold-standard closure.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/detector.hh"
#include "gold/closure.hh"
#include "obs/metrics.hh"
#include "report/checker.hh"
#include "report/triage.hh"
#include "runtime/runtime.hh"
#include "trace/trace.hh"
#include "verify/replay.hh"
#include "verify/state.hh"
#include "verify/verifier.hh"
#include "workload/workload.hh"

namespace asyncclock::verify {
namespace {

using report::RaceReport;
using report::ReplayVerdict;
using runtime::Runtime;
using runtime::Script;
using trace::OpId;
using trace::OpKind;
using trace::Trace;

/** Access ops (reads+writes) touching @p var, in trace order. */
std::vector<OpId>
accessesOf(const Trace &tr, trace::VarId var)
{
    std::vector<OpId> out;
    for (OpId i = 0; i < tr.numOps(); ++i) {
        const auto &op = tr.op(i);
        if ((op.kind == OpKind::Read || op.kind == OpKind::Write) &&
            op.target == var) {
            out.push_back(i);
        }
    }
    return out;
}

/** RaceReport for the access pair (@p a, @p b) of @p tr, fields
 * filled from the trace (what a checker would emit). */
RaceReport
pairReport(const Trace &tr, OpId a, OpId b)
{
    const auto &pa = tr.op(a);
    const auto &pb = tr.op(b);
    RaceReport r;
    r.var = pa.target;
    r.prevOp = a;
    r.curOp = b;
    r.prevSite = pa.site;
    r.curSite = pb.site;
    r.prevTask = pa.task;
    r.curTask = pb.task;
    r.prevWrite = pa.kind == OpKind::Write;
    r.curWrite = pb.kind == OpKind::Write;
    return r;
}

/** The uninitialized write-then-read bug (BarcodeScanner's pattern):
 * two unordered events on one looper, the earlier writes, the later
 * reads. */
void
buildHarmfulApp(Runtime &rt)
{
    auto q = rt.addLooper("main");
    auto x = rt.var("camera");
    auto sw = rt.site("onResume", trace::Frame::User);
    auto sr = rt.site("surfaceCreated", trace::Frame::User);
    rt.spawnWorker("w1", Script().post(q, Script().write(x, sw)));
    rt.spawnWorker("w2",
                   Script().sleep(50).post(q, Script().read(x, sr)));
}

TEST(StateOracle, RecordedRunIsDeterministic)
{
    Runtime rt;
    buildHarmfulApp(rt);
    Trace tr = rt.run();
    TraceInterpreter interp(tr);
    EXPECT_TRUE(interp.runRecorded() == interp.runRecorded());
    EXPECT_TRUE(interp.runRecorded().faults.empty());
}

TEST(StateOracle, FaultSetDistinguishesSchedules)
{
    Runtime rt;
    buildHarmfulApp(rt);
    Trace tr = rt.run();
    auto acc = accessesOf(tr, 0);
    ASSERT_EQ(acc.size(), 2u);

    // Hand-flip just the two accesses: read before write.
    std::vector<OpId> order(tr.numOps());
    for (OpId i = 0; i < tr.numOps(); ++i)
        order[i] = i;
    std::swap(order[acc[0]], order[acc[1]]);

    TraceInterpreter interp(tr);
    StateSnapshot recorded = interp.runRecorded();
    StateSnapshot flipped = interp.run(order);
    ASSERT_EQ(flipped.faults.size(), 1u);
    EXPECT_EQ(flipped.faults[0].kind, FaultKind::UninitRead);
    std::string d = recorded.diff(flipped, tr);
    EXPECT_NE(d.find("uninitialized read"), std::string::npos);
    EXPECT_NE(d.find("flipped order"), std::string::npos);
}

TEST(Replay, HarmfulFlipIsConfirmed)
{
    Runtime rt;
    buildHarmfulApp(rt);
    Trace tr = rt.run();
    ASSERT_EQ(tr.validate(), "");
    gold::Closure hb(tr);
    auto acc = accessesOf(tr, 0);
    ASSERT_EQ(acc.size(), 2u);
    ASSERT_FALSE(hb.happensBefore(acc[0], acc[1]));

    ReplayController rc(tr, hb);
    FlipOutcome out = rc.verifyPair(acc[0], acc[1]);
    EXPECT_EQ(out.verdict, ReplayVerdict::Confirmed);
    EXPECT_NE(out.detail.find("uninitialized read"),
              std::string::npos);
}

TEST(Replay, InitializedStaleReadIsBenign)
{
    // Type I idiom: the variable is initialized happens-before both
    // racy accesses; flipping write/read only makes the read stale,
    // which no final-state observation can see.
    Runtime rt;
    auto q = rt.addLooper("main");
    auto x = rt.var("model");
    auto si = rt.site("init", trace::Frame::User);
    auto sw = rt.site("update", trace::Frame::User);
    auto sr = rt.site("draw", trace::Frame::User);
    auto ready = rt.handle("ready");
    rt.spawnWorker("init", Script().write(x, si).signal(ready));
    rt.spawnWorker("a", Script()
                            .await(ready)
                            .sleep(10)
                            .post(q, Script().write(x, sw)));
    rt.spawnWorker("b", Script()
                            .await(ready)
                            .sleep(60)
                            .post(q, Script().read(x, sr)));
    Trace tr = rt.run();
    ASSERT_EQ(tr.validate(), "");
    gold::Closure hb(tr);

    // The update/draw pair races; find those two accesses.
    auto acc = accessesOf(tr, x);
    ASSERT_EQ(acc.size(), 3u);  // init write, update, draw
    ASSERT_FALSE(hb.happensBefore(acc[1], acc[2]));
    ASSERT_FALSE(hb.happensBefore(acc[2], acc[1]));

    ReplayController rc(tr, hb);
    FlipOutcome out = rc.verifyPair(acc[1], acc[2]);
    EXPECT_EQ(out.verdict, ReplayVerdict::Benign) << out.detail;
}

TEST(Replay, CommutativeWritesAreBenign)
{
    // Two unordered writes whose sites share a commutativity group:
    // the oracle applies order-insensitive updates, so the flip can
    // never diverge — the whitelist's claim checked mechanically.
    Runtime rt;
    auto q = rt.addLooper("main");
    auto x = rt.var("list.size");
    auto sa = rt.site("List.add:1", trace::Frame::Library, 7);
    auto sb = rt.site("List.add:2", trace::Frame::Library, 7);
    rt.spawnWorker("w1", Script().post(q, Script().write(x, sa)));
    rt.spawnWorker("w2",
                   Script().sleep(30).post(q, Script().write(x, sb)));
    Trace tr = rt.run();
    gold::Closure hb(tr);
    auto acc = accessesOf(tr, x);
    ASSERT_EQ(acc.size(), 2u);
    ReplayController rc(tr, hb);
    FlipOutcome out = rc.verifyPair(acc[0], acc[1]);
    EXPECT_EQ(out.verdict, ReplayVerdict::Benign) << out.detail;
}

TEST(Replay, OrderedPairIsInfeasible)
{
    // A fabricated candidate whose accesses are FIFO-ordered: no real
    // schedule can flip them, so replay must refuse.
    Runtime rt;
    auto q = rt.addLooper("main");
    auto x = rt.var("x");
    auto s = rt.site("s", trace::Frame::User);
    rt.spawnWorker("w", Script()
                            .post(q, Script().write(x, s))
                            .post(q, Script().read(x, s)));
    Trace tr = rt.run();
    gold::Closure hb(tr);
    auto acc = accessesOf(tr, x);
    ASSERT_EQ(acc.size(), 2u);
    ASSERT_TRUE(hb.happensBefore(acc[0], acc[1]));

    ReplayController rc(tr, hb);
    FlipOutcome out = rc.verifyPair(acc[0], acc[1]);
    EXPECT_EQ(out.verdict, ReplayVerdict::Infeasible);
    EXPECT_NE(out.detail.find("happens-before ordered"),
              std::string::npos);
}

TEST(Replay, FlippedScheduleIsAValidLinearization)
{
    Runtime rt;
    buildHarmfulApp(rt);
    Trace tr = rt.run();
    gold::Closure hb(tr);
    auto acc = accessesOf(tr, 0);
    ASSERT_EQ(acc.size(), 2u);

    ReplayController rc(tr, hb);
    std::vector<OpId> order = rc.flippedSchedule(acc[0], acc[1]);

    // A permutation of every op...
    ASSERT_EQ(order.size(), tr.numOps());
    std::vector<OpId> pos(tr.numOps(), 0);
    std::vector<bool> seen(tr.numOps(), false);
    for (std::size_t i = 0; i < order.size(); ++i) {
        ASSERT_FALSE(seen[order[i]]);
        seen[order[i]] = true;
        pos[order[i]] = static_cast<OpId>(i);
    }
    // ...that flips the pair...
    EXPECT_LT(pos[acc[1]], pos[acc[0]]);
    // ...and preserves every happens-before edge of the closure.
    for (OpId a = 0; a < tr.numOps(); ++a) {
        for (OpId b = 0; b < tr.numOps(); ++b) {
            if (hb.happensBefore(a, b))
                ASSERT_LT(pos[a], pos[b])
                    << "hb edge " << a << "->" << b << " violated";
        }
    }
}

TEST(Replay, RuntimeGateReexecutionFlipsAndDiverges)
{
    Runtime recordRt;
    buildHarmfulApp(recordRt);
    Trace recorded = recordRt.run();
    auto acc = accessesOf(recorded, 0);
    ASSERT_EQ(acc.size(), 2u);

    auto flippedE = reexecuteFlipped(
        [](Runtime &rt) { buildHarmfulApp(rt); }, recorded, acc[0],
        acc[1]);
    ASSERT_TRUE(flippedE) << flippedE.status().toString();
    const Trace &flipped = flippedE.value();

    // The true re-execution reads before writing: the interpreter
    // must observe the crash analog that the recorded run lacks.
    TraceInterpreter ri(recorded);
    TraceInterpreter fi(flipped);
    EXPECT_TRUE(ri.runRecorded().faults.empty());
    ASSERT_EQ(fi.runRecorded().faults.size(), 1u);
    EXPECT_EQ(fi.runRecorded().faults[0].kind, FaultKind::UninitRead);
}

TEST(Replay, RuntimeGateRefusesThreadResidentAccesses)
{
    // Worker-thread accesses can't be steered by delivery gating.
    Runtime rt;
    auto x = rt.var("x");
    auto s = rt.site("s", trace::Frame::User);
    rt.spawnWorker("w1", Script().write(x, s));
    rt.spawnWorker("w2", Script().sleep(5).read(x, s));
    Trace tr = rt.run();
    auto acc = accessesOf(tr, x);
    ASSERT_EQ(acc.size(), 2u);
    auto e = reexecuteFlipped([](Runtime &) {}, tr, acc[0], acc[1]);
    ASSERT_FALSE(e);
    EXPECT_EQ(e.status().code(), ErrCode::Unsupported);
}

TEST(Triage, ClassesAndRepresentativesAreInputOrderIndependent)
{
    Runtime rt;
    buildHarmfulApp(rt);
    Trace tr = rt.run();
    auto acc = accessesOf(tr, 0);
    ASSERT_EQ(acc.size(), 2u);

    // Three candidates in one class (same var/site pair, different
    // op pairs) plus one in another class.
    RaceReport r1 = pairReport(tr, acc[0], acc[1]);
    RaceReport r2 = r1;
    r2.prevOp += 100;  // synthetic later instance of the same pair
    r2.curOp += 100;
    RaceReport r3 = r1;
    r3.curOp += 50;
    RaceReport other = r1;
    other.var += 1;

    std::vector<RaceReport> fwd = {r1, r2, r3, other};
    std::vector<RaceReport> rev = {other, r3, r2, r1};
    report::TriageReport a = report::buildTriage(fwd);
    report::TriageReport b = report::buildTriage(rev);
    ASSERT_EQ(a.classes.size(), 2u);
    ASSERT_EQ(b.classes.size(), 2u);
    for (std::size_t i = 0; i < a.classes.size(); ++i) {
        EXPECT_EQ(a.classes[i].var, b.classes[i].var);
        EXPECT_EQ(a.classes[i].raceCount, b.classes[i].raceCount);
        EXPECT_TRUE(a.classes[i].representative ==
                    b.classes[i].representative);
        // The representative is the minimum candidate of the class.
        EXPECT_TRUE(a.classes[i].representative == r1 ||
                    a.classes[i].representative == other);
    }
}

TEST(Triage, RankingPutsConfirmedFirst)
{
    report::TriageReport tri;
    for (int i = 0; i < 4; ++i) {
        report::TriageClass cls;
        cls.var = static_cast<trace::VarId>(i);
        cls.firstSite = 0;
        cls.secondSite = 1;
        cls.verdict = static_cast<ReplayVerdict>(i);
        tri.classes.push_back(cls);
    }
    report::rankTriage(tri);
    EXPECT_EQ(tri.classes[0].verdict, ReplayVerdict::Confirmed);
    EXPECT_EQ(tri.classes[1].verdict, ReplayVerdict::Unverified);
    EXPECT_EQ(tri.classes[2].verdict, ReplayVerdict::Benign);
    EXPECT_EQ(tri.classes[3].verdict, ReplayVerdict::Infeasible);
    EXPECT_EQ(tri.confirmed, 1u);
    EXPECT_EQ(tri.unverified, 1u);
    EXPECT_EQ(tri.benign, 1u);
    EXPECT_EQ(tri.infeasible, 1u);
}

/** Run the real detector over @p tr and return its race list. */
std::vector<RaceReport>
detectRaces(const Trace &tr)
{
    report::ExactChecker checker;
    core::DetectorConfig cfg;
    cfg.windowMs = 0;
    core::AsyncClockDetector det(tr, checker, cfg);
    det.runAll();
    return checker.races();
}

TEST(Verifier, SeededAppVerdictsMatchGroundTruth)
{
    workload::AppProfile p;
    p.seed = 90125;
    p.looperEvents = 80;
    auto app = workload::generateApp(p);

    report::TriageReport tri = report::buildTriage(
        detectRaces(app.trace));
    VerifyConfig cfg;
    VerifySummary sum = verifyTriage(tri, app.trace, cfg);

    EXPECT_EQ(sum.replays, tri.classes.size());
    EXPECT_EQ(sum.unverified, 0u);
    // Detector candidates on a windowless run are real races, so no
    // verdict may contradict the closure.
    EXPECT_EQ(sum.infeasible, 0u);
    // Every seeded harmful pair confirms; every seeded benign idiom
    // (initialized Type I/II, commutative) proves benign.
    std::uint64_t confirmedSeeds = 0;
    std::uint64_t benignSeeds = 0;
    for (const auto &cls : tri.classes) {
        switch (app.trace.var(cls.var).seedLabel) {
          case trace::SeedLabel::Harmful:
            EXPECT_EQ(cls.verdict, ReplayVerdict::Confirmed)
                << cls.detail;
            ++confirmedSeeds;
            break;
          case trace::SeedLabel::HarmlessTypeI:
          case trace::SeedLabel::HarmlessTypeII:
          case trace::SeedLabel::HarmlessCommutative:
            EXPECT_EQ(cls.verdict, ReplayVerdict::Benign)
                << cls.detail;
            ++benignSeeds;
            break;
          default:
            break;
        }
    }
    EXPECT_GE(confirmedSeeds, p.seededHarmful);
    EXPECT_GE(benignSeeds, 1u);
}

TEST(Verifier, InfeasibleAgreesWithGoldClosure)
{
    // Sweep generated and chaos traces; for every triage class the
    // verifier may call INFEASIBLE exactly when the gold closure
    // orders the representative pair. Foreign ordered candidates are
    // added to make the INFEASIBLE branch reachable.
    for (std::uint64_t seed : {11ull, 23ull}) {
        workload::AppProfile p;
        p.seed = seed;
        p.looperEvents = 60;
        auto app = workload::generateApp(p);
        Trace &tr = app.trace;
        gold::Closure hb(tr);

        std::vector<RaceReport> candidates = detectRaces(tr);
        // Fabricate ordered "candidates": consecutive access pairs on
        // the same variable that the closure orders.
        unsigned fabricated = 0;
        for (trace::VarId v = 0;
             v < tr.vars().size() && fabricated < 5; ++v) {
            auto acc = accessesOf(tr, v);
            for (std::size_t i = 0; i + 1 < acc.size(); ++i) {
                if (hb.happensBefore(acc[i], acc[i + 1])) {
                    candidates.push_back(
                        pairReport(tr, acc[i], acc[i + 1]));
                    ++fabricated;
                    break;
                }
            }
        }
        ASSERT_GT(fabricated, 0u);

        report::TriageReport tri = report::buildTriage(candidates);
        VerifySummary sum = verifyTriage(tri, tr, {});
        EXPECT_GE(sum.infeasible, fabricated);
        for (const auto &cls : tri.classes) {
            const RaceReport &r = cls.representative;
            bool ordered = hb.happensBefore(r.prevOp, r.curOp) ||
                           hb.happensBefore(r.curOp, r.prevOp);
            EXPECT_EQ(cls.verdict == ReplayVerdict::Infeasible,
                      ordered)
                << replayVerdictName(cls.verdict) << ": "
                << cls.detail;
        }
    }
}

TEST(Verifier, ForeignCandidatesStayUnverified)
{
    Runtime rt;
    buildHarmfulApp(rt);
    Trace tr = rt.run();

    RaceReport bogus;
    bogus.var = 0;
    bogus.prevOp = 1;  // not a Read/Write matching the claimed fields
    bogus.curOp = 2;
    report::TriageReport tri = report::buildTriage({bogus});
    VerifySummary sum = verifyTriage(tri, tr, {});
    EXPECT_EQ(sum.replays, 0u);
    EXPECT_EQ(sum.unverified, 1u);
    EXPECT_EQ(tri.classes[0].verdict, ReplayVerdict::Unverified);
}

TEST(Verifier, MaxOpsCapSkipsVerification)
{
    Runtime rt;
    buildHarmfulApp(rt);
    Trace tr = rt.run();
    auto acc = accessesOf(tr, 0);
    report::TriageReport tri =
        report::buildTriage({pairReport(tr, acc[0], acc[1])});

    VerifyConfig cfg;
    cfg.maxOps = 1;
    VerifySummary sum = verifyTriage(tri, tr, cfg);
    EXPECT_EQ(sum.replays, 0u);
    EXPECT_EQ(sum.unverified, 1u);
    ASSERT_EQ(sum.notes.size(), 1u);
    EXPECT_NE(sum.notes[0].find("cap"), std::string::npos);
}

TEST(Verifier, MetricsCountVerdicts)
{
    Runtime rt;
    buildHarmfulApp(rt);
    Trace tr = rt.run();
    auto acc = accessesOf(tr, 0);
    report::TriageReport tri =
        report::buildTriage({pairReport(tr, acc[0], acc[1])});

    obs::MetricsRegistry reg;
    VerifyConfig cfg;
    cfg.obs.metrics = &reg;
    VerifySummary sum = verifyTriage(tri, tr, cfg);
    EXPECT_EQ(sum.confirmed, 1u);
    EXPECT_EQ(reg.counter("verify.replays").value(), 1u);
    EXPECT_EQ(reg.counter("verify.verdict.confirmed").value(), 1u);
    EXPECT_EQ(reg.counter("verify.verdict.benign").value(), 0u);
    EXPECT_EQ(
        reg.histogram("verify.replay_us", {}).count(), 1u);
}

TEST(Verifier, VerdictReportIsByteIdenticalAcrossRuns)
{
    workload::AppProfile p;
    p.seed = 5150;
    p.looperEvents = 70;
    auto app = workload::generateApp(p);
    trace::TraceMeta meta = trace::TraceMeta::fromTrace(app.trace);

    auto render = [&]() {
        report::TriageReport tri = report::buildTriage(
            detectRaces(app.trace));
        verifyTriage(tri, app.trace, {});
        std::string text = tri.summary() + "\n";
        for (const auto &cls : tri.classes)
            text += report::describeClass(meta, cls) + "\n";
        return text;
    };
    EXPECT_EQ(render(), render());
}

} // namespace
} // namespace asyncclock::verify
