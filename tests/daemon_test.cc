/**
 * @file
 * Always-on daemon tests, driven in-process through Daemon::handle()
 * with workers = 0 so every pump is deterministic: session lifecycle
 * against single-shot report byte-identity, checkpoint-backed
 * eviction + transparent resume, SIGKILL-style crash recovery,
 * per-session fault isolation (a poisoned session quarantines alone),
 * admission control (backpressure, capacity, duplicate ids), the
 * ingest-gap protocol, graceful drain, and session-id validation.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "core/engine.hh"
#include "daemon/daemon.hh"
#include "report/fasttrack.hh"
#include "report/races.hh"
#include "trace/trace_io.hh"
#include "workload/async_workload.hh"
#include "workload/workload.hh"

namespace asyncclock {
namespace {

namespace fs = std::filesystem;
using daemon::Daemon;
using daemon::DaemonConfig;
using obs::HttpRequest;
using obs::HttpResponse;

std::string
freshDir(const std::string &name)
{
    fs::path dir = fs::path(testing::TempDir()) / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

std::string
looperTraceText(std::uint64_t seed, unsigned events)
{
    workload::AppProfile p;
    p.seed = seed;
    p.looperEvents = events;
    return trace::writeTraceToString(workload::generateApp(p).trace);
}

std::string
asyncTraceText(std::uint64_t seed)
{
    workload::AsyncProfile p;
    p.seed = seed;
    return trace::writeTraceToString(
        workload::generateAsyncApp(p).trace);
}

/** The report a single-shot streaming run over @p data produces —
 * the byte-identity oracle for every daemon path. */
std::string
singleShotReport(const std::string &data)
{
    std::istringstream in(data);
    trace::StreamingTextSource src(in);
    EXPECT_TRUE(src.ok()) << src.error();
    report::FastTrackChecker checker;
    core::DetectorEngine eng(
        core::modelForDialect(src.meta().dialect()), src, checker,
        core::DetectorConfig{});
    while (eng.processNext()) {
    }
    EXPECT_TRUE(src.ok()) << src.error();
    report::RaceAnalyzer analyzer(eng.meta());
    report::ReportSummary summary =
        analyzer.analyze(checker.races(), report::FilterConfig{});
    core::appendRunNotes(summary.notes, src.recordsSkipped(),
                         &eng.counters());
    return report::renderReportText(analyzer, summary);
}

HttpRequest
req(std::string method, std::string path, std::string query = "",
    std::string body = "")
{
    HttpRequest r;
    r.method = std::move(method);
    r.path = std::move(path);
    r.query = std::move(query);
    r.body = std::move(body);
    return r;
}

std::string
header(const HttpResponse &resp, const std::string &key)
{
    for (const auto &[k, v] : resp.headers)
        if (k == key)
            return v;
    return "";
}

HttpResponse
create(Daemon &d, const std::string &id)
{
    return d.handle(req("POST", "/v1/sessions", "id=" + id));
}

HttpResponse
post(Daemon &d, const std::string &id, const std::string &bytes,
     std::uint64_t offset)
{
    return d.handle(req("POST", "/v1/sessions/" + id + "/trace",
                        "offset=" + std::to_string(offset), bytes));
}

/** Stream @p data in @p chunkBytes-sized offsets, pumping between
 * chunks like the worker pool would. */
void
feedAll(Daemon &d, const std::string &id, const std::string &data,
        std::size_t chunkBytes = 16 * 1024)
{
    for (std::size_t off = 0; off < data.size(); off += chunkBytes) {
        HttpResponse r =
            post(d, id, data.substr(off, chunkBytes), off);
        ASSERT_EQ(r.status, 200) << r.body;
        d.pumpAllForTest();
    }
}

HttpResponse
finish(Daemon &d, const std::string &id)
{
    return d.handle(
        req("POST", "/v1/sessions/" + id + "/finish"));
}

/** Poll the report, pumping between 202s. */
HttpResponse
fetchReport(Daemon &d, const std::string &id)
{
    HttpResponse r;
    for (int i = 0; i < 200; ++i) {
        r = d.handle(req("GET", "/v1/sessions/" + id + "/report"));
        if (r.status != 202)
            return r;
        d.pumpAllForTest();
    }
    return r;
}

DaemonConfig
testConfig(const std::string &stateDir)
{
    DaemonConfig cfg;
    cfg.stateDir = stateDir;
    cfg.workers = 0;  // deterministic: tests pump explicitly
    return cfg;
}

// ----- lifecycle and byte-identity ------------------------------------

TEST(Daemon, MixedSessionsMatchSingleShotByteForByte)
{
    const std::string dir = freshDir("daemon_lifecycle");
    const std::string looper = looperTraceText(11, 60);
    const std::string async = asyncTraceText(7);

    Daemon d(testConfig(dir));
    ASSERT_TRUE(d.init().isOk());
    EXPECT_EQ(create(d, "loop").status, 201);
    EXPECT_EQ(create(d, "coro").status, 201);

    // Interleave the two sessions' ingest.
    feedAll(d, "loop", looper, 4 * 1024);
    feedAll(d, "coro", async, 4 * 1024);
    EXPECT_EQ(finish(d, "loop").status, 200);
    EXPECT_EQ(finish(d, "coro").status, 200);

    HttpResponse r1 = fetchReport(d, "loop");
    HttpResponse r2 = fetchReport(d, "coro");
    ASSERT_EQ(r1.status, 200) << r1.body;
    ASSERT_EQ(r2.status, 200) << r2.body;
    EXPECT_EQ(r1.body, singleShotReport(looper));
    EXPECT_EQ(r2.body, singleShotReport(async));
}

TEST(Daemon, InfoReportsProgress)
{
    const std::string dir = freshDir("daemon_info");
    const std::string data = looperTraceText(3, 40);
    Daemon d(testConfig(dir));
    ASSERT_TRUE(d.init().isOk());
    ASSERT_EQ(create(d, "s").status, 201);
    feedAll(d, "s", data);
    ASSERT_EQ(finish(d, "s").status, 200);
    ASSERT_EQ(fetchReport(d, "s").status, 200);

    HttpResponse info = d.handle(req("GET", "/v1/sessions/s"));
    ASSERT_EQ(info.status, 200);
    EXPECT_NE(info.body.find("\"state\":\"finished\""),
              std::string::npos)
        << info.body;
    EXPECT_NE(info.body.find("\"spooled_bytes\":" +
                             std::to_string(data.size())),
              std::string::npos)
        << info.body;

    HttpResponse list = d.handle(req("GET", "/v1/sessions"));
    EXPECT_NE(list.body.find("\"id\":\"s\""), std::string::npos);
}

// ----- eviction + resume ----------------------------------------------

TEST(Daemon, EvictionAndResumeKeepReportIdentical)
{
    const std::string dir = freshDir("daemon_evict");
    // Big enough that the engine goes hot well before finish (the
    // live-edge margin is 64 KiB).
    const std::string data = looperTraceText(5, 4000);
    ASSERT_GT(data.size(), 300u * 1024);

    DaemonConfig cfg = testConfig(dir);
    cfg.memBudgetBytes = 1;  // evict anything resident
    Daemon d(cfg);
    ASSERT_TRUE(d.init().isOk());
    ASSERT_EQ(create(d, "ev").status, 201);

    // First half: pump until the engine is hot, then let the
    // housekeeper's memory ladder checkpoint it out.
    const std::size_t half = data.size() / 2;
    feedAll(d, "ev", data.substr(0, half));
    d.housekeepForTest();

    HttpResponse info = d.handle(req("GET", "/v1/sessions/ev"));
    ASSERT_NE(info.body.find("\"state\":\"evicted\""),
              std::string::npos)
        << "session did not evict: " << info.body;
    EXPECT_TRUE(fs::exists(fs::path(dir) / "ev.ckpt"));

    // Second half + finish: the session resumes transparently.
    for (std::size_t off = half; off < data.size();
         off += 16 * 1024) {
        ASSERT_EQ(post(d, "ev", data.substr(off, 16 * 1024), off)
                      .status,
                  200);
        d.pumpAllForTest();
    }
    ASSERT_EQ(finish(d, "ev").status, 200);
    HttpResponse r = fetchReport(d, "ev");
    ASSERT_EQ(r.status, 200) << r.body;
    EXPECT_EQ(r.body, singleShotReport(data));

    info = d.handle(req("GET", "/v1/sessions/ev"));
    EXPECT_NE(info.body.find("\"evictions\":"), std::string::npos);
    EXPECT_EQ(info.body.find("\"evictions\":0"), std::string::npos)
        << info.body;
    EXPECT_EQ(info.body.find("\"resumes\":0"), std::string::npos)
        << info.body;
}

TEST(Daemon, IdleSessionsEvict)
{
    const std::string dir = freshDir("daemon_idle");
    const std::string data = looperTraceText(5, 4000);
    DaemonConfig cfg = testConfig(dir);
    cfg.idleTimeoutMs = 1;
    Daemon d(cfg);
    ASSERT_TRUE(d.init().isOk());
    ASSERT_EQ(create(d, "idle").status, 201);
    feedAll(d, "idle", data.substr(0, data.size() / 2));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    d.housekeepForTest();
    HttpResponse info = d.handle(req("GET", "/v1/sessions/idle"));
    EXPECT_NE(info.body.find("\"state\":\"evicted\""),
              std::string::npos)
        << info.body;
}

// ----- crash recovery -------------------------------------------------

TEST(Daemon, CrashAndRestartRecoversByteIdenticalReport)
{
    const std::string dir = freshDir("daemon_crash");
    const std::string data = looperTraceText(9, 4000);
    const std::size_t cut = (2 * data.size()) / 3;

    {
        Daemon d(testConfig(dir));
        ASSERT_TRUE(d.init().isOk());
        ASSERT_EQ(create(d, "cr").status, 201);
        feedAll(d, "cr", data.substr(0, cut));
        d.crashStop();  // SIGKILL stand-in: no flush, no drain
    }

    Daemon d2(testConfig(dir));
    ASSERT_TRUE(d2.init().isOk());
    EXPECT_EQ(d2.sessionCount(), 1u);

    // The client re-creates, learns the id is taken, resyncs from the
    // daemon's spooled offset, and continues.
    EXPECT_EQ(create(d2, "cr").status, 409);
    HttpResponse info = d2.handle(req("GET", "/v1/sessions/cr"));
    ASSERT_NE(info.body.find("\"spooled_bytes\":" +
                             std::to_string(cut)),
              std::string::npos)
        << info.body;
    for (std::size_t off = cut; off < data.size();
         off += 16 * 1024) {
        ASSERT_EQ(post(d2, "cr", data.substr(off, 16 * 1024), off)
                      .status,
                  200);
        d2.pumpAllForTest();
    }
    ASSERT_EQ(finish(d2, "cr").status, 200);
    HttpResponse r = fetchReport(d2, "cr");
    ASSERT_EQ(r.status, 200) << r.body;
    EXPECT_EQ(r.body, singleShotReport(data));
}

TEST(Daemon, RestartAfterEvictionResumesFromCheckpoint)
{
    const std::string dir = freshDir("daemon_crash_ckpt");
    const std::string data = looperTraceText(13, 4000);
    const std::size_t cut = data.size() / 2;

    {
        DaemonConfig cfg = testConfig(dir);
        cfg.memBudgetBytes = 1;
        Daemon d(cfg);
        ASSERT_TRUE(d.init().isOk());
        ASSERT_EQ(create(d, "ck").status, 201);
        feedAll(d, "ck", data.substr(0, cut));
        d.housekeepForTest();  // checkpoint to disk
        ASSERT_TRUE(fs::exists(fs::path(dir) / "ck.ckpt"));
        d.crashStop();
    }

    Daemon d2(testConfig(dir));
    ASSERT_TRUE(d2.init().isOk());
    for (std::size_t off = cut; off < data.size();
         off += 16 * 1024) {
        ASSERT_EQ(post(d2, "ck", data.substr(off, 16 * 1024), off)
                      .status,
                  200);
        d2.pumpAllForTest();
    }
    ASSERT_EQ(finish(d2, "ck").status, 200);
    HttpResponse r = fetchReport(d2, "ck");
    ASSERT_EQ(r.status, 200) << r.body;
    EXPECT_EQ(r.body, singleShotReport(data));
}

// ----- fault isolation ------------------------------------------------

TEST(Daemon, PoisonedSessionQuarantinesAloneAndNeighborSurvives)
{
    const std::string dir = freshDir("daemon_poison");
    const std::string good = looperTraceText(21, 60);
    Daemon d(testConfig(dir));
    ASSERT_TRUE(d.init().isOk());
    ASSERT_EQ(create(d, "good").status, 201);
    ASSERT_EQ(create(d, "bad").status, 201);

    feedAll(d, "good", good);
    // Valid header, then structurally damaged entity table.
    ASSERT_EQ(post(d, "bad",
                   "asyncclock-trace v1\nthread 0 looper main\n"
                   "var GARBAGE not-a-number\n",
                   0)
                  .status,
              200);
    ASSERT_EQ(finish(d, "good").status, 200);
    ASSERT_EQ(finish(d, "bad").status, 200);

    HttpResponse bad = fetchReport(d, "bad");
    EXPECT_EQ(bad.status, 410);
    EXPECT_NE(bad.body.find("quarantined"), std::string::npos)
        << bad.body;

    // Further ingest into the quarantined session is refused...
    EXPECT_EQ(post(d, "bad", "more", 999).status, 410);

    // ...and the neighbor is untouched.
    HttpResponse goodR = fetchReport(d, "good");
    ASSERT_EQ(goodR.status, 200) << goodR.body;
    EXPECT_EQ(goodR.body, singleShotReport(good));
}

TEST(Daemon, MidStreamGarbageOnlyQuarantinesAtFinish)
{
    // Pre-finish damage could still be a torn record at the live
    // edge, so the verdict must wait for finish — and then be
    // deterministic.
    const std::string dir = freshDir("daemon_garbage");
    const std::string data = looperTraceText(23, 4000);
    Daemon d(testConfig(dir));
    ASSERT_TRUE(d.init().isOk());
    ASSERT_EQ(create(d, "g").status, 201);
    const std::size_t half = data.size() / 2;
    feedAll(d, "g", data.substr(0, half));
    ASSERT_EQ(post(d, "g", "\x7f\x13garbage-not-a-trace\n", half)
                  .status,
              200);
    d.pumpAllForTest();
    HttpResponse info = d.handle(req("GET", "/v1/sessions/g"));
    EXPECT_EQ(info.body.find("\"state\":\"quarantined\""),
              std::string::npos)
        << "quarantined before finish: " << info.body;
    ASSERT_EQ(finish(d, "g").status, 200);
    HttpResponse r = fetchReport(d, "g");
    EXPECT_EQ(r.status, 410) << r.body;
}

// ----- admission control ----------------------------------------------

TEST(Daemon, DuplicateAndInvalidCreatesRefused)
{
    const std::string dir = freshDir("daemon_dup");
    Daemon d(testConfig(dir));
    ASSERT_TRUE(d.init().isOk());
    EXPECT_EQ(create(d, "x").status, 201);
    EXPECT_EQ(create(d, "x").status, 409);
    EXPECT_EQ(create(d, "").status, 400);
    EXPECT_EQ(create(d, "../evil").status, 400);
    EXPECT_EQ(create(d, ".hidden").status, 400);
    EXPECT_EQ(create(d, std::string(65, 'a')).status, 400);
}

TEST(Daemon, CapacityRefusalCarriesRetryAfter)
{
    const std::string dir = freshDir("daemon_cap");
    DaemonConfig cfg = testConfig(dir);
    cfg.maxSessions = 1;
    Daemon d(cfg);
    ASSERT_TRUE(d.init().isOk());
    EXPECT_EQ(create(d, "one").status, 201);
    HttpResponse r = create(d, "two");
    EXPECT_EQ(r.status, 429);
    EXPECT_NE(header(r, "Retry-After"), "");
}

TEST(Daemon, BackpressureReturns429UntilPumped)
{
    const std::string dir = freshDir("daemon_backpressure");
    DaemonConfig cfg = testConfig(dir);
    cfg.queueChunks = 1;
    cfg.admissionTimeoutMs = 1;
    Daemon d(cfg);
    ASSERT_TRUE(d.init().isOk());
    ASSERT_EQ(create(d, "bp").status, 201);

    const std::string data = looperTraceText(2, 40);
    ASSERT_EQ(post(d, "bp", data.substr(0, 1024), 0).status, 200);
    HttpResponse r = post(d, "bp", data.substr(1024, 1024), 1024);
    EXPECT_EQ(r.status, 429);
    EXPECT_EQ(header(r, "Retry-After"), "1");

    d.pumpAllForTest();  // drains the queue into the spool
    EXPECT_EQ(post(d, "bp", data.substr(1024, 1024), 1024).status,
              200);
}

TEST(Daemon, IngestGapRecordedAndRetransmitAbsorbed)
{
    const std::string dir = freshDir("daemon_gap");
    Daemon d(testConfig(dir));
    ASSERT_TRUE(d.init().isOk());
    ASSERT_EQ(create(d, "gap").status, 201);
    const std::string data = looperTraceText(4, 40);

    ASSERT_EQ(post(d, "gap", data.substr(0, 2048), 0).status, 200);
    d.pumpAllForTest();
    // A gap: bytes for offset 4096 when only 2048 are spooled.
    ASSERT_EQ(post(d, "gap", data.substr(4096, 1024), 4096).status,
              200);
    d.pumpAllForTest();
    HttpResponse info = d.handle(req("GET", "/v1/sessions/gap"));
    EXPECT_NE(info.body.find("\"ingest_error\""), std::string::npos)
        << info.body;
    EXPECT_NE(info.body.find("\"spooled_bytes\":2048"),
              std::string::npos)
        << info.body;

    // An overlapping retransmit is absorbed, and the stream recovers.
    for (std::size_t off = 1024; off < data.size(); off += 2048) {
        ASSERT_EQ(post(d, "gap", data.substr(off, 2048), off).status,
                  200);
        d.pumpAllForTest();
    }
    ASSERT_EQ(finish(d, "gap").status, 200);
    HttpResponse r = fetchReport(d, "gap");
    ASSERT_EQ(r.status, 200) << r.body;
    EXPECT_EQ(r.body, singleShotReport(data));
}

// ----- drain and deletion ---------------------------------------------

TEST(Daemon, DrainFlushesFinishedAndUnfinishedSessions)
{
    const std::string dir = freshDir("daemon_drain");
    const std::string done = looperTraceText(6, 60);
    const std::string part = looperTraceText(8, 4000);

    Daemon d(testConfig(dir));
    ASSERT_TRUE(d.init().isOk());
    ASSERT_EQ(create(d, "done").status, 201);
    ASSERT_EQ(create(d, "part").status, 201);
    feedAll(d, "done", done);
    ASSERT_EQ(finish(d, "done").status, 200);
    feedAll(d, "part", part.substr(0, part.size() / 2));

    d.drain();

    // Finished session ran to its final report; the unfinished hot
    // one was checkpointed; admissions are now refused.
    EXPECT_TRUE(fs::exists(fs::path(dir) / "done.report"));
    EXPECT_TRUE(fs::exists(fs::path(dir) / "part.ckpt"));
    EXPECT_EQ(create(d, "late").status, 503);
    EXPECT_EQ(post(d, "part", "x", 0).status, 503);

    std::ifstream in(fs::path(dir) / "done.report",
                     std::ios::binary);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_EQ(text, singleShotReport(done));
}

TEST(Daemon, DeleteForgetsSessionAndRemovesFiles)
{
    const std::string dir = freshDir("daemon_delete");
    Daemon d(testConfig(dir));
    ASSERT_TRUE(d.init().isOk());
    ASSERT_EQ(create(d, "del").status, 201);
    ASSERT_EQ(post(d, "del", "asyncclock-trace v1\n", 0).status,
              200);
    d.pumpAllForTest();
    EXPECT_EQ(d.handle(req("DELETE", "/v1/sessions/del")).status,
              200);
    EXPECT_EQ(d.handle(req("GET", "/v1/sessions/del")).status, 404);
    EXPECT_FALSE(fs::exists(fs::path(dir) / "del.spool"));
    EXPECT_EQ(create(d, "del").status, 201);  // id reusable
}

TEST(Daemon, HealthAndMetricsEndpointsServe)
{
    const std::string dir = freshDir("daemon_health");
    Daemon d(testConfig(dir));
    ASSERT_TRUE(d.init().isOk());
    ASSERT_EQ(create(d, "m").status, 201);
    d.housekeepForTest();
    HttpResponse hz = d.handle(req("GET", "/healthz"));
    EXPECT_EQ(hz.status, 200);
    EXPECT_NE(hz.body.find("\"sessions\":1"), std::string::npos)
        << hz.body;
    HttpResponse m = d.handle(req("GET", "/metrics"));
    EXPECT_EQ(m.status, 200);
    EXPECT_NE(m.body.find("daemon_sessions"), std::string::npos)
        << m.body;
    // The predictive-tier verdict family is pre-registered at zero so
    // scrapers always see the full series set.
    for (const char *verdict : {"confirmed", "infeasible", "dropped"}) {
        EXPECT_NE(m.body.find(std::string("predicted_candidates_total"
                                          "{verdict=\"") +
                              verdict + "\"} 0"),
                  std::string::npos)
            << m.body;
    }
}

// ----- session ids ----------------------------------------------------

TEST(Daemon, ValidSessionIdRules)
{
    EXPECT_TRUE(daemon::validSessionId("a"));
    EXPECT_TRUE(daemon::validSessionId("run-2.looper_A"));
    EXPECT_FALSE(daemon::validSessionId(""));
    EXPECT_FALSE(daemon::validSessionId(".dot"));
    EXPECT_FALSE(daemon::validSessionId("a/b"));
    EXPECT_FALSE(daemon::validSessionId("a b"));
    EXPECT_FALSE(daemon::validSessionId(std::string(65, 'x')));
}

} // namespace
} // namespace asyncclock
