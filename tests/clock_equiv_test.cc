/**
 * @file
 * Backend equivalence: the three clock backends (sparse, COW, tree)
 * must be observationally identical.
 *
 * Two layers of evidence:
 *
 *  - Differential property tests: the same random operation sequence
 *    is applied to one clock universe per backend and every
 *    observable (get, size, knows, leq, ==, toString) is compared
 *    after each step. One generator uses the unrestricted API
 *    (raise/join/eraseIf — the tree backend must degrade, never
 *    diverge); the other follows the detector's ownership discipline
 *    (tick, snapshot export, join of exports) so the tree backend's
 *    pruning paths are actually exercised.
 *
 *  - End-to-end: full detector + FastTrack + analyzer runs over
 *    generated apps and chaos traces must produce byte-identical
 *    reports under all three backends.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "clock/tree_clock.hh"
#include "clock/vector_clock.hh"
#include "core/detector.hh"
#include "report/export.hh"
#include "report/fasttrack.hh"
#include "report/races.hh"
#include "support/rng.hh"
#include "workload/workload.hh"

namespace asyncclock::clock {
namespace {

constexpr Backend kBackends[] = {Backend::Sparse, Backend::Cow,
                                 Backend::Tree};

/** Probe every observable of two same-content clocks. */
void
expectSameObservables(const VectorClock &a, const VectorClock &b,
                      ChainId maxChain, const char *what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (ChainId c = 0; c <= maxChain; ++c)
        ASSERT_EQ(a.get(c), b.get(c)) << what << " chain " << c;
    ASSERT_EQ(a.toString(), b.toString()) << what;
}

TEST(ParseBackend, NamesRoundTrip)
{
    Backend b = Backend::Sparse;
    EXPECT_TRUE(parseBackend("sparse", b));
    EXPECT_EQ(b, Backend::Sparse);
    EXPECT_TRUE(parseBackend("cow", b));
    EXPECT_EQ(b, Backend::Cow);
    EXPECT_TRUE(parseBackend("tree", b));
    EXPECT_EQ(b, Backend::Tree);
    EXPECT_FALSE(parseBackend("vector", b));
    EXPECT_FALSE(parseBackend("", b));
    for (Backend x : kBackends) {
        Backend y = Backend::Sparse;
        EXPECT_TRUE(parseBackend(backendName(x), y));
        EXPECT_EQ(x, y);
    }
}

TEST(BackendEquiv, ExplicitConstructionSelectsBackend)
{
    for (Backend b : kBackends) {
        VectorClock vc(b);
        EXPECT_EQ(vc.backend(), b);
        vc.raise(3, 7);
        EXPECT_EQ(vc.get(3), 7u);
        // Copies keep the source's backend, not the process default.
        VectorClock copy = vc;
        EXPECT_EQ(copy.backend(), b);
        EXPECT_EQ(copy.get(3), 7u);
    }
}

/**
 * Unrestricted API sweep: raise/join/copy/knows/eraseIf in random
 * order. The tree backend sees out-of-band raises and erases here;
 * it must still agree with sparse on every observable.
 */
TEST(BackendEquiv, RandomOpsArbitraryDiscipline)
{
    constexpr unsigned kClocks = 8;
    constexpr ChainId kMaxChain = 12;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        TreeClock::resetPruneGuard();
        // One universe of kClocks clocks per backend, driven by
        // identical op streams (fresh RNG per backend).
        std::vector<std::vector<VectorClock>> u;
        for (Backend b : kBackends)
            u.emplace_back(kClocks, VectorClock(b));
        for (std::size_t bi = 0; bi < u.size(); ++bi) {
            Rng rng(seed * 1000003);
            auto &clocks = u[bi];
            for (unsigned step = 0; step < 300; ++step) {
                unsigned op = static_cast<unsigned>(rng.below(100));
                unsigned i =
                    static_cast<unsigned>(rng.below(kClocks));
                unsigned j =
                    static_cast<unsigned>(rng.below(kClocks));
                ChainId c = static_cast<ChainId>(
                    rng.below(kMaxChain + 1));
                Tick t = static_cast<Tick>(rng.range(1, 40));
                if (op < 45) {
                    clocks[i].raise(c, t);
                } else if (op < 80) {
                    clocks[i].joinWith(clocks[j]);
                } else if (op < 90) {
                    clocks[i] = clocks[j];
                } else if (op < 95) {
                    clocks[i].intern();
                } else {
                    clocks[i].eraseIf(
                        [t](ChainId, Tick v) { return v < t; });
                }
            }
        }
        for (unsigned i = 0; i < kClocks; ++i) {
            expectSameObservables(u[0][i], u[1][i], kMaxChain,
                                  "sparse vs cow");
            expectSameObservables(u[0][i], u[2][i], kMaxChain,
                                  "sparse vs tree");
            for (unsigned j = 0; j < kClocks; ++j) {
                bool leq = u[0][i].leq(u[0][j]);
                EXPECT_EQ(u[1][i].leq(u[1][j]), leq);
                EXPECT_EQ(u[2][i].leq(u[2][j]), leq);
                bool eq = u[0][i] == u[0][j];
                EXPECT_EQ(u[1][i] == u[1][j], eq);
                EXPECT_EQ(u[2][i] == u[2][j], eq);
            }
        }
    }
    TreeClock::resetPruneGuard();
}

/**
 * Detector-discipline sweep: every chain has a unique owner clock;
 * entries enter other clocks only through joins of snapshots
 * exported right after a tick. This is the regime where tree pruning
 * fires; the observables must still match sparse exactly.
 */
TEST(BackendEquiv, RandomOpsTickDiscipline)
{
    constexpr unsigned kChains = 10;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        TreeClock::resetPruneGuard();
        std::vector<std::vector<VectorClock>> owners;
        std::vector<std::vector<VectorClock>> exports;
        for (Backend b : kBackends) {
            owners.emplace_back(kChains, VectorClock(b));
            exports.emplace_back(kChains, VectorClock(b));
        }
        std::vector<Tick> ticks(kChains, 0);
        for (std::size_t bi = 0; bi < owners.size(); ++bi) {
            Rng rng(seed * 777);
            std::vector<Tick> localTicks(kChains, 0);
            auto &own = owners[bi];
            auto &exp = exports[bi];
            for (unsigned step = 0; step < 400; ++step) {
                unsigned c =
                    static_cast<unsigned>(rng.below(kChains));
                unsigned d =
                    static_cast<unsigned>(rng.below(kChains));
                if (rng.chance(0.45)) {
                    // Owner receives a peer's snapshot, then ticks
                    // and exports — the detector's handler shape.
                    own[c].joinWith(exp[d]);
                    own[c].tick(c, ++localTicks[c]);
                    exp[c] = own[c];
                } else if (rng.chance(0.5)) {
                    own[c].joinWith(exp[d]);
                } else {
                    own[c].tick(c, ++localTicks[c]);
                    exp[c] = own[c];
                }
            }
            if (bi == 0)
                ticks = localTicks;
        }
        for (unsigned c = 0; c < kChains; ++c) {
            expectSameObservables(owners[0][c], owners[1][c],
                                  kChains, "sparse vs cow owner");
            expectSameObservables(owners[0][c], owners[2][c],
                                  kChains, "sparse vs tree owner");
            for (unsigned d = 0; d < kChains; ++d) {
                Epoch e{d, ticks[d]};
                EXPECT_EQ(owners[1][c].knows(e),
                          owners[0][c].knows(e));
                EXPECT_EQ(owners[2][c].knows(e),
                          owners[0][c].knows(e));
            }
        }
    }
}

TEST(BackendEquiv, CowCopiesAreIndependent)
{
    VectorClock a{Backend::Cow};
    a.raise(1, 5);
    a.raise(2, 9);
    VectorClock b = a;  // shares the node
    b.raise(1, 6);      // must break the share, not mutate a
    EXPECT_EQ(a.get(1), 5u);
    EXPECT_EQ(b.get(1), 6u);
    EXPECT_EQ(b.get(2), 9u);
    // Interning equal-content clocks keeps them equal and
    // mutation-safe.
    VectorClock c{Backend::Cow}, d{Backend::Cow};
    c.raise(7, 3);
    d.raise(7, 3);
    c.intern();
    d.intern();
    EXPECT_TRUE(c == d);
    d.raise(8, 1);
    EXPECT_EQ(c.get(8), 0u);
    EXPECT_EQ(d.get(8), 1u);
}

// ----------------------------------------------------------------
// End-to-end: byte-identical reports under every backend.
// ----------------------------------------------------------------

/** Full pipeline (detector -> FastTrack -> analyzer) as one string:
 * the race list, the grouped report text, and the JSON export. */
std::string
fullReport(const trace::Trace &tr, Backend b)
{
    core::DetectorConfig cfg;
    cfg.windowMs = 0;
    cfg.clockBackend = b;
    report::FastTrackChecker checker;
    core::AsyncClockDetector det(tr, checker, cfg);
    det.runAll();

    std::string out;
    for (const auto &r : checker.races()) {
        out += std::to_string(r.prevOp) + "-" +
               std::to_string(r.curOp) + ";";
    }
    out += "\n";
    report::RaceAnalyzer analyzer(tr);
    report::ReportSummary summary = analyzer.analyze(checker.races());
    out += summary.summary();
    for (const auto &g : summary.reported)
        out += analyzer.describe(g) + "\n";
    out += report::toJson(summary, tr);
    return out;
}

TEST(BackendEquiv, EndToEndReportsByteIdentical)
{
    TreeClock::resetPruneGuard();
    std::vector<trace::Trace> traces;
    workload::AppProfile p;
    p.seed = 42;
    p.looperEvents = 120;
    p.binderEvents = 15;
    traces.push_back(workload::generateApp(p).trace);
    traces.push_back(workload::chaosTrace(54, 70));
    traces.push_back(workload::chaosTrace(57, 55));
    for (const auto &tr : traces) {
        ASSERT_EQ(tr.validate(true), "");
        const std::string sparse = fullReport(tr, Backend::Sparse);
        EXPECT_EQ(fullReport(tr, Backend::Cow), sparse);
        EXPECT_EQ(fullReport(tr, Backend::Tree), sparse);
    }
}

} // namespace
} // namespace asyncclock::clock
