/**
 * @file
 * Backend equivalence: the four clock backends (sparse, COW, tree,
 * hybrid) must be observationally identical.
 *
 * Two layers of evidence:
 *
 *  - Differential property tests: the same random operation sequence
 *    is applied to one clock universe per backend and every
 *    observable (get, size, knows, leq, ==, toString) is compared
 *    after each step. One generator uses the unrestricted API
 *    (raise/join/eraseIf — the tree and hybrid backends must degrade,
 *    never diverge); another follows the detector's ownership
 *    discipline (tick, snapshot export, join of exports) so the
 *    pruning paths are actually exercised; a third mixes backends in
 *    one universe so cross-representation joins go through the
 *    canonical entry view. The sparse sweeps additionally run with
 *    the SIMD kernels forced off to pin the scalar fallback.
 *
 *  - End-to-end: full detector + FastTrack + analyzer runs over
 *    generated apps and chaos traces must produce byte-identical
 *    reports under all four backends.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "clock/hybrid_clock.hh"
#include "clock/simd.hh"
#include "clock/tree_clock.hh"
#include "clock/vector_clock.hh"
#include "core/detector.hh"
#include "report/export.hh"
#include "report/fasttrack.hh"
#include "report/races.hh"
#include "support/rng.hh"
#include "workload/workload.hh"

namespace asyncclock::clock {
namespace {

constexpr Backend kBackends[] = {Backend::Sparse, Backend::Cow,
                                 Backend::Tree, Backend::Hybrid};

void
resetPruneGuards()
{
    TreeClock::resetPruneGuard();
    HybridClock::resetPruneGuard();
}

/** Probe every observable of two same-content clocks. */
void
expectSameObservables(const VectorClock &a, const VectorClock &b,
                      ChainId maxChain, const char *what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (ChainId c = 0; c <= maxChain; ++c)
        ASSERT_EQ(a.get(c), b.get(c)) << what << " chain " << c;
    ASSERT_EQ(a.toString(), b.toString()) << what;
}

TEST(ParseBackend, NamesRoundTrip)
{
    Backend b = Backend::Sparse;
    EXPECT_TRUE(parseBackend("sparse", b));
    EXPECT_EQ(b, Backend::Sparse);
    EXPECT_TRUE(parseBackend("cow", b));
    EXPECT_EQ(b, Backend::Cow);
    EXPECT_TRUE(parseBackend("tree", b));
    EXPECT_EQ(b, Backend::Tree);
    EXPECT_TRUE(parseBackend("hybrid", b));
    EXPECT_EQ(b, Backend::Hybrid);
    EXPECT_FALSE(parseBackend("vector", b));
    EXPECT_FALSE(parseBackend("", b));
    for (Backend x : kBackends) {
        Backend y = Backend::Sparse;
        EXPECT_TRUE(parseBackend(backendName(x), y));
        EXPECT_EQ(x, y);
    }
    // The allowed-set string (used by usage text and parse errors)
    // names every backend, pipe-separated.
    std::string names = backendNames();
    for (Backend x : kBackends)
        EXPECT_NE(names.find(backendName(x)), std::string::npos)
            << backendName(x);
    EXPECT_EQ(names, "sparse|cow|tree|hybrid");
}

TEST(BackendEquiv, ExplicitConstructionSelectsBackend)
{
    for (Backend b : kBackends) {
        VectorClock vc(b);
        EXPECT_EQ(vc.backend(), b);
        vc.raise(3, 7);
        EXPECT_EQ(vc.get(3), 7u);
        // Copies keep the source's backend, not the process default.
        VectorClock copy = vc;
        EXPECT_EQ(copy.backend(), b);
        EXPECT_EQ(copy.get(3), 7u);
    }
}

/**
 * Unrestricted API sweep: raise/join/copy/knows/eraseIf in random
 * order. The tree backend sees out-of-band raises and erases here;
 * it must still agree with sparse on every observable.
 */
TEST(BackendEquiv, RandomOpsArbitraryDiscipline)
{
    constexpr unsigned kClocks = 8;
    constexpr ChainId kMaxChain = 12;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        resetPruneGuards();
        // One universe of kClocks clocks per backend, driven by
        // identical op streams (fresh RNG per backend).
        std::vector<std::vector<VectorClock>> u;
        for (Backend b : kBackends)
            u.emplace_back(kClocks, VectorClock(b));
        for (std::size_t bi = 0; bi < u.size(); ++bi) {
            Rng rng(seed * 1000003);
            auto &clocks = u[bi];
            for (unsigned step = 0; step < 300; ++step) {
                unsigned op = static_cast<unsigned>(rng.below(100));
                unsigned i =
                    static_cast<unsigned>(rng.below(kClocks));
                unsigned j =
                    static_cast<unsigned>(rng.below(kClocks));
                ChainId c = static_cast<ChainId>(
                    rng.below(kMaxChain + 1));
                Tick t = static_cast<Tick>(rng.range(1, 40));
                if (op < 45) {
                    clocks[i].raise(c, t);
                } else if (op < 80) {
                    clocks[i].joinWith(clocks[j]);
                } else if (op < 90) {
                    clocks[i] = clocks[j];
                } else if (op < 95) {
                    clocks[i].intern();
                } else {
                    clocks[i].eraseIf(
                        [t](ChainId, Tick v) { return v < t; });
                }
            }
        }
        for (unsigned i = 0; i < kClocks; ++i) {
            for (std::size_t bi = 1; bi < u.size(); ++bi) {
                expectSameObservables(u[0][i], u[bi][i], kMaxChain,
                                      backendName(kBackends[bi]));
            }
            for (unsigned j = 0; j < kClocks; ++j) {
                bool leq = u[0][i].leq(u[0][j]);
                bool eq = u[0][i] == u[0][j];
                for (std::size_t bi = 1; bi < u.size(); ++bi) {
                    EXPECT_EQ(u[bi][i].leq(u[bi][j]), leq);
                    EXPECT_EQ(u[bi][i] == u[bi][j], eq);
                }
            }
        }
    }
    resetPruneGuards();
}

/**
 * Detector-discipline sweep: every chain has a unique owner clock;
 * entries enter other clocks only through joins of snapshots
 * exported right after a tick. This is the regime where tree pruning
 * fires; the observables must still match sparse exactly.
 */
TEST(BackendEquiv, RandomOpsTickDiscipline)
{
    constexpr unsigned kChains = 10;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        resetPruneGuards();
        std::vector<std::vector<VectorClock>> owners;
        std::vector<std::vector<VectorClock>> exports;
        for (Backend b : kBackends) {
            owners.emplace_back(kChains, VectorClock(b));
            exports.emplace_back(kChains, VectorClock(b));
        }
        std::vector<Tick> ticks(kChains, 0);
        for (std::size_t bi = 0; bi < owners.size(); ++bi) {
            Rng rng(seed * 777);
            std::vector<Tick> localTicks(kChains, 0);
            auto &own = owners[bi];
            auto &exp = exports[bi];
            for (unsigned step = 0; step < 400; ++step) {
                unsigned c =
                    static_cast<unsigned>(rng.below(kChains));
                unsigned d =
                    static_cast<unsigned>(rng.below(kChains));
                if (rng.chance(0.45)) {
                    // Owner receives a peer's snapshot, then ticks
                    // and exports — the detector's handler shape.
                    own[c].joinWith(exp[d]);
                    own[c].tick(c, ++localTicks[c]);
                    exp[c] = own[c];
                } else if (rng.chance(0.5)) {
                    own[c].joinWith(exp[d]);
                } else {
                    own[c].tick(c, ++localTicks[c]);
                    exp[c] = own[c];
                }
            }
            if (bi == 0)
                ticks = localTicks;
        }
        for (unsigned c = 0; c < kChains; ++c) {
            for (std::size_t bi = 1; bi < owners.size(); ++bi) {
                expectSameObservables(owners[0][c], owners[bi][c],
                                      kChains,
                                      backendName(kBackends[bi]));
            }
            for (unsigned d = 0; d < kChains; ++d) {
                Epoch e{d, ticks[d]};
                bool knows = owners[0][c].knows(e);
                for (std::size_t bi = 1; bi < owners.size(); ++bi)
                    EXPECT_EQ(owners[bi][c].knows(e), knows);
            }
        }
    }
}

/**
 * Mixed-backend universe: clock i uses backend i mod 4, so joins,
 * leq, == and assignments constantly cross representations through
 * the canonical entry view. A same-shaped all-sparse universe is the
 * oracle.
 */
TEST(BackendEquiv, RandomOpsMixedBackendUniverse)
{
    constexpr unsigned kClocks = 8;
    constexpr ChainId kMaxChain = 12;
    constexpr unsigned kNumBackends =
        sizeof(kBackends) / sizeof(kBackends[0]);
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        resetPruneGuards();
        std::vector<VectorClock> mixed;
        std::vector<VectorClock> oracle(kClocks,
                                        VectorClock(Backend::Sparse));
        for (unsigned i = 0; i < kClocks; ++i)
            mixed.emplace_back(kBackends[i % kNumBackends]);
        auto run = [&](std::vector<VectorClock> &clocks) {
            Rng rng(seed * 90001);
            for (unsigned step = 0; step < 300; ++step) {
                unsigned op = static_cast<unsigned>(rng.below(100));
                unsigned i =
                    static_cast<unsigned>(rng.below(kClocks));
                unsigned j =
                    static_cast<unsigned>(rng.below(kClocks));
                ChainId c = static_cast<ChainId>(
                    rng.below(kMaxChain + 1));
                Tick t = static_cast<Tick>(rng.range(1, 40));
                if (op < 40) {
                    clocks[i].raise(c, t);
                } else if (op < 55) {
                    clocks[i].tick(c, clocks[i].get(c) + 1);
                } else if (op < 90) {
                    clocks[i].joinWith(clocks[j]);
                } else if (op < 95) {
                    clocks[i].intern();
                } else {
                    clocks[i].eraseIf(
                        [t](ChainId, Tick v) { return v < t; });
                }
            }
        };
        run(mixed);
        run(oracle);
        for (unsigned i = 0; i < kClocks; ++i) {
            // Mixed clocks keep their construction backend through
            // mutation (assignment was excluded from the op mix).
            EXPECT_EQ(mixed[i].backend(),
                      kBackends[i % kNumBackends]);
            expectSameObservables(oracle[i], mixed[i], kMaxChain,
                                  "mixed universe");
            for (unsigned j = 0; j < kClocks; ++j) {
                EXPECT_EQ(mixed[i].leq(mixed[j]),
                          oracle[i].leq(oracle[j]));
                EXPECT_EQ(mixed[i] == mixed[j],
                          oracle[i] == oracle[j]);
            }
        }
    }
    resetPruneGuards();
}

TEST(BackendEquiv, CowCopiesAreIndependent)
{
    VectorClock a{Backend::Cow};
    a.raise(1, 5);
    a.raise(2, 9);
    VectorClock b = a;  // shares the node
    b.raise(1, 6);      // must break the share, not mutate a
    EXPECT_EQ(a.get(1), 5u);
    EXPECT_EQ(b.get(1), 6u);
    EXPECT_EQ(b.get(2), 9u);
    // Interning equal-content clocks keeps them equal and
    // mutation-safe.
    VectorClock c{Backend::Cow}, d{Backend::Cow};
    c.raise(7, 3);
    d.raise(7, 3);
    c.intern();
    d.intern();
    EXPECT_TRUE(c == d);
    d.raise(8, 1);
    EXPECT_EQ(c.get(8), 0u);
    EXPECT_EQ(d.get(8), 1u);
}

TEST(BackendEquiv, HybridSnapshotsAreIndependent)
{
    resetPruneGuards();
    VectorClock a{Backend::Hybrid};
    a.tick(1, 5);
    a.raise(2, 9);
    VectorClock b = a;  // shares the rep: a pointer-bump snapshot
    b.raise(1, 6);      // must path-copy, not mutate a
    EXPECT_EQ(a.get(1), 5u);
    EXPECT_EQ(b.get(1), 6u);
    EXPECT_EQ(b.get(2), 9u);
    a.tick(1, 7);  // owner keeps ticking; snapshot must not see it
    EXPECT_EQ(b.get(1), 6u);
    EXPECT_EQ(a.get(1), 7u);
    // Joining a snapshot back into a third clock sees the snapshot's
    // frozen state.
    VectorClock c{Backend::Hybrid};
    c.joinWith(b);
    EXPECT_EQ(c.get(1), 6u);
    EXPECT_EQ(c.get(2), 9u);
}

TEST(BackendEquiv, HybridDeepSnapshotChainsStayConsistent)
{
    // Layered snapshots of an evolving owner: each mutation must
    // path-copy exactly the shared spine, leaving every earlier
    // snapshot frozen.
    resetPruneGuards();
    VectorClock owner{Backend::Hybrid};
    std::vector<VectorClock> snaps;
    std::vector<std::vector<Tick>> expect;
    for (Tick t = 1; t <= 24; ++t) {
        owner.tick(t % 6, owner.get(t % 6) + 1);
        owner.raise(6 + t % 3, t);
        snaps.push_back(owner);
        std::vector<Tick> e;
        for (ChainId c = 0; c < 9; ++c)
            e.push_back(owner.get(c));
        expect.push_back(e);
    }
    for (std::size_t i = 0; i < snaps.size(); ++i) {
        for (ChainId c = 0; c < 9; ++c)
            ASSERT_EQ(snaps[i].get(c), expect[i][c])
                << "snapshot " << i << " chain " << c;
    }
}

// ----------------------------------------------------------------
// SIMD sparse fast path: scalar fallback must be bit-equivalent.
// ----------------------------------------------------------------

TEST(SimdSparse, ScalarFallbackMatchesVectorKernels)
{
    // Build clocks large enough (>= 64 entries) that the lane
    // kernels run many full blocks, with equal key sets so the
    // same-layout path actually fires.
    const bool wasEnabled = simdEnabled();
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        Rng rng(seed * 31337);
        std::vector<std::pair<ChainId, Tick>> entriesA;
        std::vector<std::pair<ChainId, Tick>> entriesB;
        for (ChainId c = 0; c < 96; ++c) {
            Tick ta = static_cast<Tick>(rng.range(1, 1000));
            Tick tb = static_cast<Tick>(rng.range(1, 1000));
            entriesA.emplace_back(c, ta);
            // Same key set, independently drawn ticks: exercises
            // both join directions and non-trivial leq outcomes.
            entriesB.emplace_back(c, tb);
        }
        for (bool simd : {true, false}) {
            setSimdEnabled(simd);
            VectorClock a{Backend::Sparse}, b{Backend::Sparse};
            for (auto &[c, t] : entriesA)
                a.raise(c, t);
            for (auto &[c, t] : entriesB)
                b.raise(c, t);
            VectorClock joined = a;
            joined.joinWith(b);
            for (ChainId c = 0; c < 96; ++c)
                ASSERT_EQ(joined.get(c),
                          std::max(entriesA[c].second,
                                   entriesB[c].second))
                    << "simd=" << simd;
            EXPECT_TRUE(a.leq(joined)) << "simd=" << simd;
            EXPECT_TRUE(b.leq(joined)) << "simd=" << simd;
            EXPECT_EQ(a.leq(b),
                      [&] {
                          for (ChainId c = 0; c < 96; ++c) {
                              if (entriesA[c].second >
                                  entriesB[c].second)
                                  return false;
                          }
                          return true;
                      }())
                << "simd=" << simd;
            VectorClock j2 = b;
            j2.joinWith(a);
            EXPECT_TRUE(joined == j2) << "simd=" << simd;
        }
    }
    setSimdEnabled(wasEnabled);
}

TEST(SimdSparse, CanonicalLayoutMakesJoinPairsSameLayout)
{
    // Two clocks that absorbed the same key set in *different*
    // orders must converge to byte-identical key lanes — the Robin
    // Hood canonical-layout property the SIMD fast path relies on.
    std::vector<ChainId> chains;
    for (ChainId c = 0; c < 128; ++c)
        chains.push_back(c * 7 + 1);
    SparseClock a, b;
    for (ChainId c : chains)
        a.raise(c, c + 1);
    for (std::size_t i = chains.size(); i-- > 0;)
        b.raise(chains[i], 2 * chains[i]);
    EXPECT_TRUE(a.sameLayoutAs(b));
    // Erase + reinsert keeps the layout canonical too.
    a.eraseIf([](ChainId c, Tick) { return c % 3 == 0; });
    b.eraseIf([](ChainId c, Tick) { return c % 3 == 0; });
    EXPECT_TRUE(a.sameLayoutAs(b));
    for (ChainId c : chains)
        if (c % 3 == 0) {
            a.raise(c, 5);
            b.raise(c, 5);
        }
    EXPECT_TRUE(a.sameLayoutAs(b));
}

// ----------------------------------------------------------------
// End-to-end: byte-identical reports under every backend.
// ----------------------------------------------------------------

/** Full pipeline (detector -> FastTrack -> analyzer) as one string:
 * the race list, the grouped report text, and the JSON export. */
std::string
fullReport(const trace::Trace &tr, Backend b)
{
    core::DetectorConfig cfg;
    cfg.windowMs = 0;
    cfg.clockBackend = b;
    report::FastTrackChecker checker;
    core::AsyncClockDetector det(tr, checker, cfg);
    det.runAll();

    std::string out;
    for (const auto &r : checker.races()) {
        out += std::to_string(r.prevOp) + "-" +
               std::to_string(r.curOp) + ";";
    }
    out += "\n";
    report::RaceAnalyzer analyzer(tr);
    report::ReportSummary summary = analyzer.analyze(checker.races());
    out += summary.summary();
    for (const auto &g : summary.reported)
        out += analyzer.describe(g) + "\n";
    out += report::toJson(summary, tr);
    return out;
}

TEST(BackendEquiv, EndToEndReportsByteIdentical)
{
    resetPruneGuards();
    std::vector<trace::Trace> traces;
    workload::AppProfile p;
    p.seed = 42;
    p.looperEvents = 120;
    p.binderEvents = 15;
    traces.push_back(workload::generateApp(p).trace);
    traces.push_back(workload::chaosTrace(54, 70));
    traces.push_back(workload::chaosTrace(57, 55));
    for (const auto &tr : traces) {
        ASSERT_EQ(tr.validate(true), "");
        const std::string sparse = fullReport(tr, Backend::Sparse);
        EXPECT_EQ(fullReport(tr, Backend::Cow), sparse);
        EXPECT_EQ(fullReport(tr, Backend::Tree), sparse);
        EXPECT_EQ(fullReport(tr, Backend::Hybrid), sparse);
        // The scalar fallback must not change a byte either.
        const bool wasEnabled = simdEnabled();
        setSimdEnabled(false);
        EXPECT_EQ(fullReport(tr, Backend::Sparse), sparse);
        setSimdEnabled(wasEnabled);
    }
}

} // namespace
} // namespace asyncclock::clock
