/**
 * @file
 * Tests for the simulated Android-like runtime: every produced trace
 * must validate, and the queueing semantics (FIFO, delays, at-time,
 * at-front, async + barriers, binder pools, fork/join, signal/wait,
 * event removal) must match the model the causality rules assume.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "runtime/runtime.hh"
#include "trace/trace.hh"

namespace asyncclock::runtime {
namespace {

using trace::EventId;
using trace::kInvalidId;
using trace::OpKind;
using trace::Task;
using trace::Trace;

/** Order of event begins, as event ids. */
std::vector<EventId>
beginOrder(const Trace &tr)
{
    std::vector<EventId> order;
    for (const auto &op : tr.ops()) {
        if (op.kind == OpKind::EventBegin)
            order.push_back(op.task.index());
    }
    return order;
}

TEST(Runtime, FifoEventsRunInSendOrder)
{
    Runtime rt;
    auto q = rt.addLooper("main");
    auto x = rt.var("x");
    auto s = rt.site("site", trace::Frame::User);
    rt.spawnWorker("w", Script()
                            .post(q, Script().write(x, s))
                            .post(q, Script().read(x, s))
                            .post(q, Script().read(x, s)));
    Trace tr = rt.run();
    EXPECT_EQ(tr.validate(), "");
    EXPECT_EQ(beginOrder(tr), (std::vector<EventId>{0, 1, 2}));
    EXPECT_EQ(rt.lastRun().undelivered, 0u);
}

TEST(Runtime, DelayedEventDispatchesAfterEarlierFifo)
{
    Runtime rt;
    auto q = rt.addLooper("main");
    rt.spawnWorker("w",
                   Script()
                       .post(q, Script(), PostOpts::delayed(100))  // e0
                       .post(q, Script())                          // e1
                       .post(q, Script()));                        // e2
    Trace tr = rt.run();
    EXPECT_EQ(tr.validate(), "");
    // The delayed event runs last despite being sent first.
    EXPECT_EQ(beginOrder(tr), (std::vector<EventId>{1, 2, 0}));
}

TEST(Runtime, AtTimeOrdersByRequestedTime)
{
    Runtime rt;
    auto q = rt.addLooper("main");
    rt.spawnWorker("w",
                   Script()
                       .post(q, Script(), PostOpts::at(500))   // e0
                       .post(q, Script(), PostOpts::at(200))   // e1
                       .post(q, Script(), PostOpts::at(300))); // e2
    Trace tr = rt.run();
    EXPECT_EQ(tr.validate(), "");
    EXPECT_EQ(beginOrder(tr), (std::vector<EventId>{1, 2, 0}));
    EXPECT_GE(rt.lastRun().endTimeMs, 500u);
}

TEST(Runtime, AtFrontJumpsTheQueue)
{
    Runtime rt;
    auto q = rt.addLooper("main");
    auto h = rt.handle("gate");
    // Stall the looper inside e0 until all posts are done, so e1..e3
    // pile up in the queue; the at-front post (e3) must then run
    // before e1 and e2, and later at-front posts go ahead of earlier
    // ones (head insertion).
    rt.spawnWorker("w",
                   Script()
                       .post(q, Script().await(h))            // e0
                       .post(q, Script())                     // e1
                       .post(q, Script(), PostOpts::atFront())  // e2
                       .post(q, Script(), PostOpts::atFront())  // e3
                       .signal(h));
    Trace tr = rt.run();
    EXPECT_EQ(tr.validate(), "");
    EXPECT_EQ(beginOrder(tr), (std::vector<EventId>{0, 3, 2, 1}));
}

TEST(Runtime, SyncBarrierStallsSyncButNotAsync)
{
    Runtime rt;
    auto q = rt.addLooper("main");
    auto bar = rt.token();
    rt.spawnWorker(
        "w", Script()
                 .postBarrier(q, bar)
                 .post(q, Script())                                // e0
                 .post(q, Script(), PostOpts::delayed(0, true))    // e1
                 .sleep(50)
                 .removeBarrier(bar));
    Trace tr = rt.run();
    EXPECT_EQ(tr.validate(), "");
    // Async e1 runs while the barrier stalls sync e0.
    EXPECT_EQ(beginOrder(tr), (std::vector<EventId>{1, 0}));
    EXPECT_EQ(rt.lastRun().undelivered, 0u);
}

TEST(Runtime, NeverRemovedBarrierLeavesUndelivered)
{
    Runtime rt;
    auto q = rt.addLooper("main");
    auto bar = rt.token();
    rt.spawnWorker("w", Script().postBarrier(q, bar).post(q, Script()));
    Trace tr = rt.run();
    EXPECT_EQ(tr.validate(), "");
    EXPECT_EQ(beginOrder(tr).size(), 0u);
    EXPECT_EQ(rt.lastRun().undelivered, 1u);
}

TEST(Runtime, RemoveCancelsQueuedEvent)
{
    Runtime rt;
    auto q = rt.addLooper("main");
    auto h = rt.handle("gate");
    auto tok = rt.token();
    rt.spawnWorker("w",
                   Script()
                       .post(q, Script().await(h))          // e0 stalls
                       .post(q, Script(), PostOpts{}, tok)  // e1
                       .remove(tok)
                       .signal(h));
    Trace tr = rt.run();
    EXPECT_EQ(tr.validate(), "");
    EXPECT_EQ(beginOrder(tr), (std::vector<EventId>{0}));
    EXPECT_EQ(tr.event(1).removeOp != kInvalidId, true);
    EXPECT_EQ(tr.stats().removedEvents, 1u);
}

TEST(Runtime, RemoveOfStartedEventIsNoop)
{
    Runtime rt;
    auto q = rt.addLooper("main");
    auto tok = rt.token();
    rt.spawnWorker("w", Script()
                            .post(q, Script(), PostOpts{}, tok)
                            .sleep(100)
                            .remove(tok));
    Trace tr = rt.run();
    EXPECT_EQ(tr.validate(), "");
    EXPECT_EQ(beginOrder(tr).size(), 1u);
    EXPECT_EQ(tr.event(0).removeOp, kInvalidId);
}

TEST(Runtime, ForkJoinBlocksUntilChildEnds)
{
    Runtime rt;
    auto x = rt.var("x");
    auto s = rt.site("s", trace::Frame::User);
    auto tok = rt.token();
    rt.spawnWorker("parent",
                   Script()
                       .fork(tok, "child",
                             Script().sleep(500).write(x, s))
                       .join(tok)
                       .read(x, s));
    Trace tr = rt.run();
    EXPECT_EQ(tr.validate(), "");
    // Find op order: fork < child write < child end < join < read.
    OpKind expect[] = {OpKind::Fork, OpKind::Write, OpKind::ThreadEnd,
                       OpKind::Join, OpKind::Read};
    std::size_t cursor = 0;
    for (const auto &op : tr.ops()) {
        if (cursor < 5 && op.kind == expect[cursor])
            ++cursor;
    }
    EXPECT_EQ(cursor, 5u);
}

TEST(Runtime, AwaitBlocksUntilSignal)
{
    Runtime rt;
    auto h = rt.handle("m");
    rt.spawnWorker("waiter", Script().await(h), 0);
    rt.spawnWorker("signaler", Script().sleep(300).signal(h), 0);
    Trace tr = rt.run();
    EXPECT_EQ(tr.validate(), "");
    // Wait op appears after signal op and at its time.
    trace::OpId sigOp = kInvalidId, waitOp = kInvalidId;
    for (trace::OpId i = 0; i < tr.numOps(); ++i) {
        if (tr.op(i).kind == OpKind::Signal)
            sigOp = i;
        if (tr.op(i).kind == OpKind::Wait)
            waitOp = i;
    }
    ASSERT_NE(sigOp, kInvalidId);
    ASSERT_NE(waitOp, kInvalidId);
    EXPECT_LT(sigOp, waitOp);
    EXPECT_GE(tr.op(waitOp).vtime, 300u);
}

TEST(Runtime, AwaitPassesIfAlreadySignaled)
{
    Runtime rt;
    auto h = rt.handle("m");
    rt.spawnWorker("a", Script().signal(h), 0);
    rt.spawnWorker("b", Script().sleep(100).await(h), 0);
    Trace tr = rt.run();
    EXPECT_EQ(tr.validate(), "");
}

TEST(Runtime, AwaitInsideLooperEventBlocksLooper)
{
    // Fig 8a shape: E2 waits on a handle signaled by a worker.
    Runtime rt;
    auto q = rt.addLooper("main");
    auto h = rt.handle("m");
    rt.spawnWorker("w", Script()
                            .post(q, Script().await(h))  // e0
                            .post(q, Script())           // e1
                            .sleep(200)
                            .signal(h));
    Trace tr = rt.run();
    EXPECT_EQ(tr.validate(), "");
    EXPECT_EQ(beginOrder(tr), (std::vector<EventId>{0, 1}));
    // e1 begins only after e0 (and hence the signal at t>=200).
    EXPECT_GE(tr.op(tr.event(1).beginOp).vtime, 200u);
}

TEST(Runtime, BinderPoolRunsEventsConcurrently)
{
    Runtime rt;
    auto q = rt.addBinderPool("ipc", 2);
    rt.spawnWorker("w", Script()
                            .post(q, Script().sleep(100))  // e0
                            .post(q, Script().sleep(100))  // e1
                            .post(q, Script().sleep(100))); // e2
    Trace tr = rt.run();
    EXPECT_EQ(tr.validate(), "");
    // Begins in FIFO order.
    EXPECT_EQ(beginOrder(tr), (std::vector<EventId>{0, 1, 2}));
    // e0 and e1 overlap: e1 begins before e0 ends.
    EXPECT_LT(tr.event(1).beginOp, tr.event(0).endOp);
    // Pool of 2: e2 begins only after one of them ends.
    EXPECT_GT(tr.event(2).beginOp, std::min(tr.event(0).endOp,
                                            tr.event(1).endOp));
    // Total runtime ~200ms, not ~300ms (concurrency).
    EXPECT_LT(rt.lastRun().endTimeMs, 290u);
}

TEST(Runtime, EventsPostingEventsFormChains)
{
    // A three-deep chain: worker -> e0 -> e1 -> e2.
    Runtime rt;
    auto q = rt.addLooper("main");
    Script level3;
    Script level2 = Script().post(q, Script());
    Script level1 = Script().post(q, level2);
    rt.spawnWorker("w", Script().post(q, level1));
    Trace tr = rt.run();
    EXPECT_EQ(tr.validate(), "");
    ASSERT_EQ(tr.events().size(), 3u);
    EXPECT_EQ(tr.event(1).sender, Task::event(0));
    EXPECT_EQ(tr.event(2).sender, Task::event(1));
}

TEST(Runtime, MultipleLoopersIndependent)
{
    Runtime rt;
    auto q1 = rt.addLooper("main");
    auto q2 = rt.addLooper("bg");
    rt.spawnWorker("w", Script()
                            .post(q1, Script().sleep(500))
                            .post(q2, Script()));
    Trace tr = rt.run();
    EXPECT_EQ(tr.validate(), "");
    // The q2 event does not wait for the q1 event.
    EXPECT_LT(tr.op(tr.event(1).endOp).vtime, 500u);
    EXPECT_NE(tr.looperOf(0), tr.looperOf(1));
}

TEST(Runtime, VtimeMonotoneAndStepCost)
{
    Runtime rt(RuntimeConfig{5});
    auto q = rt.addLooper("main");
    auto x = rt.var("x");
    auto s = rt.site("s", trace::Frame::User);
    rt.spawnWorker("w", Script().write(x, s).write(x, s).post(
                            q, Script().read(x, s)));
    Trace tr = rt.run();
    EXPECT_EQ(tr.validate(), "");
    std::uint64_t prev = 0;
    for (const auto &op : tr.ops()) {
        EXPECT_GE(op.vtime, prev);
        prev = op.vtime;
    }
    // Two writes at cost 5 each: second write at t=5.
    EXPECT_EQ(tr.op(tr.event(0).sendOp).vtime, 10u);
}

TEST(Runtime, DeterministicAcrossRuns)
{
    auto make = [] {
        Runtime rt;
        auto q = rt.addLooper("main");
        auto q2 = rt.addBinderPool("ipc", 2);
        auto h = rt.handle("h");
        rt.spawnWorker("a", Script()
                                .post(q, Script().sleep(7))
                                .post(q2, Script().sleep(3))
                                .signal(h));
        rt.spawnWorker("b", Script().await(h).post(q, Script()));
        return rt.run();
    };
    Trace t1 = make();
    Trace t2 = make();
    ASSERT_EQ(t1.numOps(), t2.numOps());
    for (trace::OpId i = 0; i < t1.numOps(); ++i) {
        EXPECT_EQ(t1.op(i).kind, t2.op(i).kind);
        EXPECT_EQ(t1.op(i).task, t2.op(i).task);
        EXPECT_EQ(t1.op(i).vtime, t2.op(i).vtime);
    }
}

TEST(Runtime, MixedPriorityStressValidates)
{
    // A dense mix of every posting mode; the full validator (which
    // cross-checks dispatch order against the Table 1 priority
    // function) must accept the produced trace.
    Runtime rt;
    auto q = rt.addLooper("main");
    auto h = rt.handle("gate");
    Script w;
    w.post(q, Script().await(h));
    for (int i = 0; i < 10; ++i) {
        w.post(q, Script(), PostOpts::delayed(i * 13 % 40));
        w.post(q, Script(), PostOpts::at(100 + (i * 29) % 70, i % 2));
        w.post(q, Script(), PostOpts::atFront(i % 3 == 0));
        w.post(q, Script(), PostOpts::delayed(i * 7 % 30, true));
    }
    w.signal(h);
    rt.spawnWorker("w", w);
    Trace tr = rt.run();
    EXPECT_EQ(tr.validate(true), "");
    EXPECT_EQ(beginOrder(tr).size(), 41u);
}

} // namespace
} // namespace asyncclock::runtime
