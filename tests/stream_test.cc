/**
 * @file
 * Streaming-pipeline tests: every TraceSource (materialized, streaming
 * text, streaming binary) feeds both detectors to identical race
 * reports; the binary format round-trips randomized workload traces
 * byte-exactly at the Trace level; truncated or corrupted binary
 * streams are rejected, not misparsed; and the runtime's
 * direct-to-sink mode reproduces the materialized trace.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/detector.hh"
#include "graph/eventracer.hh"
#include "report/fasttrack.hh"
#include "trace/trace_io.hh"
#include "workload/workload.hh"

namespace asyncclock {
namespace {

using trace::Operation;
using trace::Trace;

using RaceKey = std::tuple<trace::OpId, trace::OpId, trace::VarId>;

std::set<RaceKey>
keysOf(const std::vector<report::RaceReport> &races)
{
    std::set<RaceKey> out;
    for (const auto &r : races)
        out.insert({r.prevOp, r.curOp, r.var});
    return out;
}

std::set<RaceKey>
runAsyncClock(trace::TraceSource &src)
{
    report::FastTrackChecker checker;
    core::AsyncClockDetector det(src, checker);
    det.runAll();
    EXPECT_TRUE(src.ok()) << src.error();
    return keysOf(checker.races());
}

std::set<RaceKey>
runEventRacer(trace::TraceSource &src)
{
    report::FastTrackChecker checker;
    graph::EventRacerDetector det(src, checker);
    det.runAll();
    EXPECT_TRUE(src.ok()) << src.error();
    return keysOf(checker.races());
}

workload::AppProfile
profile(std::uint64_t seed, unsigned events)
{
    workload::AppProfile p;
    p.seed = seed;
    p.looperEvents = events;
    return p;
}

/** Entity tables equal at the level both formats preserve. */
void
expectSameEntities(const Trace &a, const Trace &b)
{
    ASSERT_EQ(a.threads().size(), b.threads().size());
    for (std::size_t i = 0; i < a.threads().size(); ++i) {
        EXPECT_EQ(a.threads()[i].kind, b.threads()[i].kind);
        EXPECT_EQ(a.threads()[i].queue, b.threads()[i].queue);
        EXPECT_EQ(a.threads()[i].name, b.threads()[i].name);
    }
    ASSERT_EQ(a.queues().size(), b.queues().size());
    for (std::size_t i = 0; i < a.queues().size(); ++i) {
        EXPECT_EQ(a.queues()[i].kind, b.queues()[i].kind);
        EXPECT_EQ(a.queues()[i].looper, b.queues()[i].looper);
        EXPECT_EQ(a.queues()[i].name, b.queues()[i].name);
    }
    EXPECT_EQ(a.events().size(), b.events().size());
    ASSERT_EQ(a.vars().size(), b.vars().size());
    for (std::size_t i = 0; i < a.vars().size(); ++i) {
        EXPECT_EQ(a.vars()[i].name, b.vars()[i].name);
        EXPECT_EQ(a.vars()[i].seedLabel, b.vars()[i].seedLabel);
    }
    ASSERT_EQ(a.handles().size(), b.handles().size());
    ASSERT_EQ(a.sites().size(), b.sites().size());
    for (std::size_t i = 0; i < a.sites().size(); ++i) {
        EXPECT_EQ(a.sites()[i].name, b.sites()[i].name);
        EXPECT_EQ(a.sites()[i].frame, b.sites()[i].frame);
        EXPECT_EQ(a.sites()[i].commGroup, b.sites()[i].commGroup);
    }
}

void
expectSameOps(const Trace &a, const Trace &b)
{
    ASSERT_EQ(a.numOps(), b.numOps());
    for (trace::OpId i = 0; i < a.numOps(); ++i) {
        const Operation &x = a.op(i);
        const Operation &y = b.op(i);
        EXPECT_EQ(x.kind, y.kind) << "op " << i;
        EXPECT_EQ(x.task.raw(), y.task.raw()) << "op " << i;
        EXPECT_EQ(x.target, y.target) << "op " << i;
        EXPECT_EQ(x.event, y.event) << "op " << i;
        EXPECT_EQ(x.site, y.site) << "op " << i;
        EXPECT_EQ(x.vtime, y.vtime) << "op " << i;
        EXPECT_EQ(x.attrs.kind, y.attrs.kind) << "op " << i;
        EXPECT_EQ(x.attrs.async, y.attrs.async) << "op " << i;
        EXPECT_EQ(x.attrs.time, y.attrs.time) << "op " << i;
    }
}

// ----- source equivalence ---------------------------------------------

class SourceEquivalence
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{
};

TEST_P(SourceEquivalence, AllSourcesAllDetectorsAgree)
{
    auto [seed, events] = GetParam();
    auto app = workload::generateApp(profile(seed, events));
    const Trace &tr = app.trace;

    std::string text = trace::writeTraceToString(tr);
    std::string bin = trace::writeBinaryTraceToString(tr);

    trace::MaterializedSource mat(tr);
    std::set<RaceKey> acExpected = runAsyncClock(mat);
    mat.rewind();
    std::set<RaceKey> erExpected = runEventRacer(mat);
    EXPECT_FALSE(acExpected.empty())
        << "workload seeded races should be detected";

    {
        std::istringstream in(text);
        trace::StreamingTextSource src(in);
        ASSERT_TRUE(src.ok()) << src.error();
        EXPECT_EQ(runAsyncClock(src), acExpected);
    }
    {
        std::istringstream in(text);
        trace::StreamingTextSource src(in);
        EXPECT_EQ(runEventRacer(src), erExpected);
    }
    {
        std::istringstream in(bin);
        trace::StreamingBinarySource src(in);
        ASSERT_TRUE(src.ok()) << src.error();
        EXPECT_EQ(runAsyncClock(src), acExpected);
    }
    {
        std::istringstream in(bin);
        trace::StreamingBinarySource src(in);
        EXPECT_EQ(runEventRacer(src), erExpected);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, SourceEquivalence,
    ::testing::Values(std::make_pair(11u, 80u),
                      std::make_pair(2024u, 150u),
                      std::make_pair(777u, 220u)));

// ----- binary round-trip property -------------------------------------

TEST(BinaryFormat, RoundTripsRandomizedWorkloads)
{
    for (std::uint64_t seed : {1u, 99u, 31337u, 555u}) {
        auto app = workload::generateApp(
            profile(seed, 60 + unsigned(seed % 100)));
        std::string bin = trace::writeBinaryTraceToString(app.trace);
        Trace back;
        std::string error;
        ASSERT_TRUE(trace::readBinaryTraceFromString(bin, back, error))
            << error;
        expectSameEntities(app.trace, back);
        expectSameOps(app.trace, back);
        EXPECT_EQ(back.validate(true), "");
        // Re-encoding the decoded trace is byte-identical.
        EXPECT_EQ(trace::writeBinaryTraceToString(back), bin);
    }
}

TEST(BinaryFormat, RoundTripsThroughTextAndBack)
{
    auto app = workload::generateApp(profile(4321, 120));
    // text -> Trace -> binary -> Trace: same ops either way.
    Trace viaText;
    std::string error;
    ASSERT_TRUE(trace::readTraceFromString(
        trace::writeTraceToString(app.trace), viaText, error))
        << error;
    Trace viaBin;
    ASSERT_TRUE(trace::readBinaryTraceFromString(
        trace::writeBinaryTraceToString(viaText), viaBin, error))
        << error;
    expectSameEntities(app.trace, viaBin);
    expectSameOps(app.trace, viaBin);
}

TEST(BinaryFormat, CompressesWellBelowMemoryFootprint)
{
    auto app = workload::generateApp(profile(8, 200));
    std::string bin = trace::writeBinaryTraceToString(app.trace);
    EXPECT_LT(bin.size(),
              app.trace.numOps() * sizeof(Operation) / 2);
}

// ----- rejection of damaged streams -----------------------------------

TEST(BinaryFormat, RejectsTruncation)
{
    auto app = workload::generateApp(profile(5, 60));
    std::string bin = trace::writeBinaryTraceToString(app.trace);
    // Chop anywhere: header-only, mid-record, missing end marker.
    for (std::size_t cut :
         {std::size_t(3), std::size_t(5), bin.size() / 3,
          bin.size() / 2, bin.size() - 1}) {
        Trace tr;
        // Poison the output to verify the reset-on-failure contract.
        tr.addVar("poison");
        std::string error;
        EXPECT_FALSE(trace::readBinaryTraceFromString(
            bin.substr(0, cut), tr, error))
            << "cut at " << cut;
        EXPECT_FALSE(error.empty());
        EXPECT_EQ(tr.vars().size(), 0u) << "trace not reset";
        EXPECT_EQ(tr.numOps(), 0u);
    }
}

TEST(BinaryFormat, RejectsBadMagicAndVersion)
{
    auto app = workload::generateApp(profile(5, 30));
    std::string bin = trace::writeBinaryTraceToString(app.trace);
    Trace tr;
    std::string error;

    std::string badMagic = bin;
    badMagic[0] = 'X';
    EXPECT_FALSE(
        trace::readBinaryTraceFromString(badMagic, tr, error));

    std::string badVersion = bin;
    badVersion[4] = char(0x7E);
    EXPECT_FALSE(
        trace::readBinaryTraceFromString(badVersion, tr, error));
}

TEST(BinaryFormat, RejectsCorruptedBytes)
{
    auto app = workload::generateApp(profile(7, 80));
    std::string bin = trace::writeBinaryTraceToString(app.trace);
    // Flip bytes across the stream. Every flip must either still
    // decode (the flip may hit a name byte or produce another valid
    // stream) or fail cleanly with an error — never crash. Flips that
    // corrupt an id past its declared table must be rejected.
    unsigned rejected = 0;
    for (std::size_t pos = 5; pos < bin.size(); pos += 11) {
        std::string bad = bin;
        bad[pos] = char(bad[pos] ^ 0xA5);
        Trace tr;
        std::string error;
        if (!trace::readBinaryTraceFromString(bad, tr, error)) {
            EXPECT_FALSE(error.empty());
            EXPECT_EQ(tr.numOps(), 0u) << "trace not reset";
            ++rejected;
        }
    }
    EXPECT_GT(rejected, 0u);
}

TEST(BinaryFormat, StreamingSourceReportsTruncation)
{
    auto app = workload::generateApp(profile(5, 60));
    std::string bin = trace::writeBinaryTraceToString(app.trace);
    std::istringstream in(bin.substr(0, bin.size() / 2));
    trace::StreamingBinarySource src(in);
    ASSERT_TRUE(src.ok());
    Operation op;
    while (src.next(op)) {
    }
    EXPECT_FALSE(src.ok());
    EXPECT_FALSE(src.error().empty());
}

// ----- text error contract --------------------------------------------

TEST(TextFormat, ErrorsCarryLineAndTokenAndResetTrace)
{
    struct Case
    {
        const char *text;
        const char *line;   ///< expected "line N" fragment
        const char *token;  ///< expected offending token
    };
    const Case cases[] = {
        {"not-a-header\n", "line 1", "not-a-header"},
        {"asyncclock-trace v1\nbogus x\n", "line 2", "bogus"},
        {"asyncclock-trace v1\nthread zz name -\n", "line 2", "zz"},
        {"asyncclock-trace v1\nop zz T0 5 -\n", "line 2", "zz"},
        {"asyncclock-trace v1\nthread looper main q9\n", "line 2",
         "q9"},
    };
    for (const Case &c : cases) {
        Trace tr;
        tr.addVar("poison");
        std::string error;
        EXPECT_FALSE(trace::readTraceFromString(c.text, tr, error))
            << c.text;
        EXPECT_NE(error.find(c.line), std::string::npos) << error;
        EXPECT_NE(error.find(c.token), std::string::npos) << error;
        EXPECT_EQ(tr.vars().size(), 0u)
            << "trace must be reset on failure";
    }
}

// ----- direct-to-sink generation --------------------------------------

TEST(SinkMode, GenerateAppToSinkMatchesMaterialized)
{
    workload::AppProfile p = profile(321, 100);
    auto app = workload::generateApp(p);

    Trace streamed;
    trace::TraceBuildSink sink(streamed);
    std::uint64_t endMs = 0;
    workload::SeededTruth truth =
        workload::generateAppToSink(p, sink, &endMs);

    expectSameEntities(app.trace, streamed);
    expectSameOps(app.trace, streamed);
    EXPECT_EQ(endMs, app.endTimeMs);
    EXPECT_EQ(truth.harmful, p.seededHarmful);
}

TEST(SinkMode, BinaryRecordingDecodesToMaterializedTrace)
{
    // Record straight to the binary writer. The live stream interleaves
    // mid-run entity declarations with ops (the batch encoder hoists
    // them all up front), so the bytes differ — but decoding must yield
    // the same trace, and re-encoding that trace must be byte-identical
    // to encoding the materialized run.
    workload::AppProfile p = profile(654, 80);
    auto app = workload::generateApp(p);

    std::ostringstream recorded;
    {
        trace::BinaryTraceWriter writer(recorded);
        workload::generateAppToSink(p, writer);
        writer.finish();
    }
    Trace decoded;
    std::string error;
    ASSERT_TRUE(trace::readBinaryTraceFromString(recorded.str(),
                                                 decoded, error))
        << error;
    expectSameEntities(app.trace, decoded);
    expectSameOps(app.trace, decoded);
    EXPECT_EQ(trace::writeBinaryTraceToString(decoded),
              trace::writeBinaryTraceToString(app.trace));
}

// ----- container-bytes contract ---------------------------------------

TEST(Sources, StreamingContainerBytesAreO1InOps)
{
    auto small = workload::generateApp(profile(9, 40));
    auto large = workload::generateApp(profile(9, 400));
    ASSERT_GT(large.trace.numOps(), 4 * small.trace.numOps());

    auto streamingPeak = [](const Trace &tr) {
        std::istringstream in(trace::writeBinaryTraceToString(tr));
        trace::StreamingBinarySource src(in);
        std::uint64_t peak = 0;
        Operation op;
        while (src.next(op))
            peak = std::max(peak, src.containerBytes());
        return peak;
    };
    std::uint64_t smallPeak = streamingPeak(small.trace);
    std::uint64_t largePeak = streamingPeak(large.trace);
    EXPECT_EQ(smallPeak, largePeak)
        << "streaming container state must not scale with ops";

    trace::MaterializedSource matSmall(small.trace);
    trace::MaterializedSource matLarge(large.trace);
    EXPECT_GT(matLarge.containerBytes(),
              3 * matSmall.containerBytes());
    EXPECT_LT(largePeak, matLarge.containerBytes() / 100);
}

} // namespace
} // namespace asyncclock
