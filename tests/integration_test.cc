/**
 * @file
 * Cross-module integration tests: trace files round-trip through the
 * full pipeline, gold-oracle rule toggles behave as documented, both
 * detectors agree under the FastTrack checker on stress patterns, and
 * the full generate -> save -> load -> analyze -> report flow works
 * end to end (the trace_analyzer example's path).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>

#include "core/detector.hh"
#include "gold/closure.hh"
#include "graph/eventracer.hh"
#include "report/fasttrack.hh"
#include "report/races.hh"
#include "runtime/runtime.hh"
#include "trace/trace_io.hh"
#include "workload/workload.hh"

namespace asyncclock {
namespace {

using runtime::PostOpts;
using runtime::Runtime;
using runtime::Script;
using trace::Trace;

core::DetectorConfig
exactConfig()
{
    core::DetectorConfig cfg;
    cfg.windowMs = 0;
    return cfg;
}

TEST(Integration, FileRoundTripPreservesAnalysis)
{
    workload::AppProfile p;
    p.seed = 4242;
    p.looperEvents = 90;
    auto app = workload::generateApp(p);

    std::string path = ::testing::TempDir() + "/roundtrip.trace";
    trace::saveTraceFile(app.trace, path);
    Trace loaded = trace::loadTraceFile(path);
    EXPECT_EQ(loaded.validate(true), "");

    auto analyze = [](const Trace &tr) {
        report::ExactChecker checker;
        core::AsyncClockDetector det(tr, checker, exactConfig());
        det.runAll();
        std::set<std::pair<trace::OpId, trace::OpId>> out;
        for (const auto &r : checker.races())
            out.insert({r.prevOp, r.curOp});
        return out;
    };
    EXPECT_EQ(analyze(app.trace), analyze(loaded));
    std::remove(path.c_str());
}

TEST(Integration, GoldRuleTogglesAreMonotone)
{
    // Disabling rules can only remove orderings, i.e. add races.
    workload::AppProfile p;
    p.seed = 777;
    p.looperEvents = 80;
    auto app = workload::generateApp(p);

    gold::GoldConfig full;
    std::size_t fullRaces = gold::Closure(app.trace, full).races().size();

    for (int toggle = 0; toggle < 4; ++toggle) {
        gold::GoldConfig cfg;
        switch (toggle) {
          case 0: cfg.atomicRule = false; break;
          case 1: cfg.priorityRule = false; break;
          case 2: cfg.atFrontRule = false; break;
          case 3: cfg.loopRules = false; break;
        }
        std::size_t races =
            gold::Closure(app.trace, cfg).races().size();
        EXPECT_GE(races, fullRaces) << "toggle " << toggle;
    }
    // Dropping PRIORITY (the FIFO rule) must strictly increase races
    // on a trace whose only ordering is FIFO.
    Runtime rt;
    auto q = rt.addLooper("main");
    auto x = rt.var("x");
    auto s = rt.site("s", trace::Frame::User);
    rt.spawnWorker("w", Script()
                            .post(q, Script().write(x, s))
                            .post(q, Script().write(x, s)));
    Trace fifoTrace = rt.run();
    gold::GoldConfig noPriority;
    noPriority.priorityRule = false;
    EXPECT_EQ(gold::Closure(fifoTrace).races().size(), 0u);
    EXPECT_EQ(gold::Closure(fifoTrace, noPriority).races().size(), 1u);
}

TEST(Integration, DetectorsAgreeUnderFastTrackOnPatterns)
{
    for (const Trace &tr :
         {workload::barcodePattern(40), workload::pingPongPattern(8, 4),
          workload::multiPathPattern(12)}) {
        report::FastTrackChecker acChecker, erChecker;
        core::AsyncClockDetector ac(tr, acChecker, exactConfig());
        ac.runAll();
        graph::EventRacerDetector er(tr, erChecker);
        er.runAll();
        std::set<trace::VarId> acVars, erVars;
        for (const auto &r : acChecker.races())
            acVars.insert(r.var);
        for (const auto &r : erChecker.races())
            erVars.insert(r.var);
        EXPECT_EQ(acVars, erVars);
        EXPECT_TRUE(acVars.empty());  // patterns are race-free
    }
}

TEST(Integration, EndToEndReportPipeline)
{
    workload::AppProfile p;
    p.seed = 31337;
    p.looperEvents = 150;
    p.binderEvents = 12;
    auto app = workload::generateApp(p);

    report::FastTrackChecker checker;
    core::AsyncClockDetector det(app.trace, checker, exactConfig());
    MemStats mem;
    det.runAll(&mem, 256);

    report::RaceAnalyzer analyzer(app.trace);
    auto summary = analyzer.analyze(checker.races());
    EXPECT_EQ(summary.harmful, app.truth.harmful);
    EXPECT_EQ(summary.typeI, app.truth.typeI);
    EXPECT_EQ(summary.typeII, app.truth.typeII);
    EXPECT_EQ(summary.filteredGroups, app.truth.commutative);
    EXPECT_GT(mem.peakTotal(), 0u);
    EXPECT_GT(det.counters().reclaimedRefcount, 0u);
    for (const auto &group : summary.reported)
        EXPECT_FALSE(analyzer.describe(group).empty());
}

TEST(Integration, WindowedRunIsSubsetOfExactOnApps)
{
    // The time window may only remove races, never invent them.
    for (std::uint64_t seed : {9001u, 9002u, 9003u}) {
        workload::AppProfile p;
        p.seed = seed;
        p.looperEvents = 140;
        p.spanMs = 120000;
        auto app = workload::generateApp(p);

        auto run = [&](std::uint64_t windowMs) {
            report::ExactChecker checker;
            core::DetectorConfig cfg;
            cfg.windowMs = windowMs;
            cfg.gcIntervalOps = 512;
            core::AsyncClockDetector det(app.trace, checker, cfg);
            det.runAll();
            std::set<std::pair<trace::OpId, trace::OpId>> out;
            for (const auto &r : checker.races())
                out.insert({r.prevOp, r.curOp});
            return out;
        };
        auto exact = run(0);
        for (std::uint64_t w : {5000u, 20000u, 60000u}) {
            auto windowed = run(w);
            for (const auto &race : windowed) {
                EXPECT_TRUE(exact.count(race))
                    << "window " << w << " invented a race (seed "
                    << seed << ")";
            }
        }
    }
}

TEST(Integration, EventRacerPruningOffStillAgrees)
{
    workload::AppProfile p;
    p.seed = 555;
    p.looperEvents = 90;
    auto app = workload::generateApp(p);
    report::ExactChecker a, b;
    graph::EventRacerConfig pruned, unpruned;
    unpruned.pruning = false;
    graph::EventRacerDetector d1(app.trace, a, pruned);
    d1.runAll();
    graph::EventRacerDetector d2(app.trace, b, unpruned);
    d2.runAll();
    EXPECT_EQ(a.races().size(), b.races().size());
    // Pruning must reduce (or equal) traversal work.
    EXPECT_LE(d1.counters().traversalVisits,
              d2.counters().traversalVisits);
}

TEST(Integration, LongFifoStreamStaysLinear)
{
    // End-to-end sanity on a 2000-event FIFO stream: bounded walks,
    // bounded live metadata, no races.
    Runtime rt;
    auto q = rt.addLooper("main");
    auto x = rt.var("x");
    auto s = rt.site("s", trace::Frame::User);
    Script w;
    for (int i = 0; i < 2000; ++i)
        w.post(q, Script().write(x, s).read(x, s));
    rt.spawnWorker("w", std::move(w));
    Trace tr = rt.run();

    report::FastTrackChecker checker;
    core::DetectorConfig cfg = exactConfig();
    cfg.gcIntervalOps = 1024;
    core::AsyncClockDetector det(tr, checker, cfg);
    det.runAll();
    EXPECT_TRUE(checker.races().empty());
    EXPECT_LT(det.counters().eventsLive, 30u);
    EXPECT_LT(det.counters().walkSteps, 5000u);
    EXPECT_LE(det.numChains(), 4u);
}

} // namespace
} // namespace asyncclock
