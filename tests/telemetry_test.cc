/**
 * @file
 * Live-telemetry-plane tests: labeled series naming (canonical form,
 * round-trip, registry create-or-get), the v2 metrics JSON schema,
 * Prometheus text exposition (golden string), publisher rate
 * computation, the in-process HTTP scrape endpoint end to end over
 * loopback (including scraping concurrently with a live detector run
 * — the TSan target), structured event-log JSONL well-formedness,
 * the WarnTap counters, TaskGraph observability, and the engine's
 * per-phase latency attribution.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "clock/policy.hh"
#include "core/detector.hh"
#include "core/engine.hh"
#include "obs/event_log.hh"
#include "obs/metrics.hh"
#include "obs/obs.hh"
#include "obs/telemetry.hh"
#include "report/fasttrack.hh"
#include "runtime/taskgraph.hh"
#include "support/logging.hh"
#include "workload/async_workload.hh"
#include "workload/workload.hh"

namespace asyncclock {
namespace {

// ---------------------------------------------------------------------
// Minimal JSON well-formedness checker (same shape as obs_test.cc:
// the library is write-only by design, so the tests bring their own
// reader).

struct JsonValidator
{
    const std::string &s;
    std::size_t i = 0;

    void
    ws()
    {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
    }

    bool
    lit(const char *t)
    {
        std::size_t n = std::strlen(t);
        if (s.compare(i, n, t) != 0)
            return false;
        i += n;
        return true;
    }

    bool
    string()
    {
        if (i >= s.size() || s[i] != '"')
            return false;
        for (++i; i < s.size(); ++i) {
            if (s[i] == '\\') {
                ++i;
            } else if (s[i] == '"') {
                ++i;
                return true;
            }
        }
        return false;
    }

    bool
    number()
    {
        std::size_t start = i;
        if (i < s.size() && s[i] == '-')
            ++i;
        while (i < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[i])) ||
                std::strchr(".eE+-", s[i])))
            ++i;
        return i > start;
    }

    bool
    value()
    {
        ws();
        if (i >= s.size())
            return false;
        switch (s[i]) {
          case '{': return members('}');
          case '[': return members(']');
          case '"': return string();
          case 't': return lit("true");
          case 'f': return lit("false");
          case 'n': return lit("null");
          default: return number();
        }
    }

    bool
    members(char close)
    {
        ++i;
        ws();
        if (i < s.size() && s[i] == close) {
            ++i;
            return true;
        }
        while (true) {
            if (close == '}') {
                ws();
                if (!string())
                    return false;
                ws();
                if (i >= s.size() || s[i] != ':')
                    return false;
                ++i;
            }
            if (!value())
                return false;
            ws();
            if (i >= s.size())
                return false;
            if (s[i] == close) {
                ++i;
                return true;
            }
            if (s[i] != ',')
                return false;
            ++i;
        }
    }
};

bool
validJson(const std::string &s)
{
    JsonValidator v{s};
    if (!v.value())
        return false;
    v.ws();
    return v.i == s.size();
}

// ---------------------------------------------------------------------
// Series naming

TEST(SeriesName, CanonicalFormSortsKeysAndEscapesValues)
{
    EXPECT_EQ(obs::seriesName("m", {}), "m");
    EXPECT_EQ(obs::seriesName("m", {{"a", "1"}}), "m{a=\"1\"}");
    // Key order on input is irrelevant.
    EXPECT_EQ(obs::seriesName("m", {{"b", "2"}, {"a", "1"}}),
              "m{a=\"1\",b=\"2\"}");
    // '"' and '\' in values are backslash-escaped.
    EXPECT_EQ(obs::seriesName("m", {{"k", "a\"b\\c"}}),
              "m{k=\"a\\\"b\\\\c\"}");
}

TEST(SeriesName, SplitRoundTrips)
{
    obs::LabelSet in = {{"model", "async"}, {"backend", "tree"},
                        {"odd", "x\"y\\z"}};
    std::string full = obs::seriesName("detector.phase_ns", in);

    std::string base;
    obs::LabelSet out;
    ASSERT_TRUE(obs::splitSeries(full, base, out));
    EXPECT_EQ(base, "detector.phase_ns");
    ASSERT_EQ(out.size(), 3u);
    // splitSeries returns the canonical (sorted) order.
    EXPECT_EQ(out[0].first, "backend");
    EXPECT_EQ(out[0].second, "tree");
    EXPECT_EQ(out[1].first, "model");
    EXPECT_EQ(out[1].second, "async");
    EXPECT_EQ(out[2].first, "odd");
    EXPECT_EQ(out[2].second, "x\"y\\z");

    // Splitting and re-joining is the identity on canonical names.
    EXPECT_EQ(obs::seriesName(base, out), full);

    // A plain name has no label block; outputs stay untouched.
    base = "sentinel";
    EXPECT_FALSE(obs::splitSeries("plain.name", base, out));
    EXPECT_EQ(base, "sentinel");
}

TEST(LabeledRegistry, CreateOrGetIgnoresLabelOrder)
{
    obs::MetricsRegistry reg;
    obs::Counter &a =
        reg.counter("c", {{"model", "looper"}, {"shard", "0"}});
    obs::Counter &b =
        reg.counter("c", {{"shard", "0"}, {"model", "looper"}});
    EXPECT_EQ(&a, &b);

    // A different label value is a different series...
    obs::Counter &c =
        reg.counter("c", {{"model", "looper"}, {"shard", "1"}});
    EXPECT_NE(&a, &c);
    // ...and the unlabeled name is yet another.
    EXPECT_NE(&a, &reg.counter("c"));

    obs::Gauge &g1 = reg.gauge("g", {{"k", "v"}});
    obs::Gauge &g2 = reg.gauge("g", {{"k", "v"}});
    EXPECT_EQ(&g1, &g2);

    obs::Histogram &h1 =
        reg.histogram("h", {{"k", "v"}}, {10, 100});
    obs::Histogram &h2 = reg.histogram("h", {{"k", "v"}}, {999});
    EXPECT_EQ(&h1, &h2);  // bounds ignored on re-get
    ASSERT_EQ(h1.bounds().size(), 2u);
}

// ---------------------------------------------------------------------
// Snapshot JSON schemas

TEST(MetricsJson, UnlabeledRegistryKeepsV1Schema)
{
    obs::MetricsRegistry reg;
    reg.counter("a.count").inc(3);
    reg.gauge("b.level").set(-4);
    std::string json = reg.snapshot().toJson();
    EXPECT_TRUE(validJson(json));
    EXPECT_NE(json.find("\"asyncclock-metrics-v1\""),
              std::string::npos);
    EXPECT_EQ(json.find("\"series\""), std::string::npos);
}

TEST(MetricsJson, LabeledSeriesSwitchToV2Schema)
{
    obs::MetricsRegistry reg;
    reg.counter("plain.count").inc(7);
    reg.counter("c", {{"model", "async"}}).inc(2);
    reg.gauge("run.info", {{"model", "looper"}, {"backend", "sparse"}})
        .set(1);
    reg.histogram("h", {{"phase", "decode"}}, {10, 100}).observe(5);

    obs::MetricsSnapshot snap = reg.snapshot();
    EXPECT_TRUE(snap.hasLabels());
    std::string json = snap.toJson();
    EXPECT_TRUE(validJson(json)) << json;
    EXPECT_NE(json.find("\"asyncclock-metrics-v2\""),
              std::string::npos);
    // Flat sections keep holding plain names only...
    EXPECT_NE(json.find("\"plain.count\":7"), std::string::npos);
    EXPECT_EQ(json.find("\"c{"), std::string::npos);
    // ...and the series section carries the parsed label sets.
    EXPECT_NE(json.find("\"series\""), std::string::npos);
    EXPECT_NE(json.find("\"labels\":{\"backend\":\"sparse\","
                        "\"model\":\"looper\"}"),
              std::string::npos)
        << json;
}

// ---------------------------------------------------------------------
// Prometheus text exposition

TEST(MetricsPrometheus, GoldenExposition)
{
    obs::MetricsRegistry reg;
    reg.counter("detector.ops_processed").inc(41);
    reg.counter("races.found", {{"shard", "0"}}).inc(2);
    reg.counter("races.found", {{"shard", "1"}}).inc(3);
    reg.gauge("run.info", {{"model", "looper"}, {"backend", "sparse"}})
        .set(1);
    obs::Histogram &h =
        reg.histogram("batch.us", {{"shard", "0"}}, {10, 100});
    h.observe(5);
    h.observe(50);
    h.observe(5000);  // overflow bucket

    std::string expected =
        "# TYPE asyncclock_batch_us histogram\n"
        "asyncclock_batch_us_bucket{shard=\"0\",le=\"10\"} 1\n"
        "asyncclock_batch_us_bucket{shard=\"0\",le=\"100\"} 2\n"
        "asyncclock_batch_us_bucket{shard=\"0\",le=\"+Inf\"} 3\n"
        "asyncclock_batch_us_sum{shard=\"0\"} 5055\n"
        "asyncclock_batch_us_count{shard=\"0\"} 3\n";
    std::string prom = reg.snapshot().toPrometheus();
    EXPECT_NE(prom.find("# TYPE asyncclock_detector_ops_processed "
                        "counter\n"
                        "asyncclock_detector_ops_processed 41\n"),
              std::string::npos)
        << prom;
    // One TYPE line per family, members adjacent.
    EXPECT_NE(prom.find("# TYPE asyncclock_races_found counter\n"
                        "asyncclock_races_found{shard=\"0\"} 2\n"
                        "asyncclock_races_found{shard=\"1\"} 3\n"),
              std::string::npos)
        << prom;
    EXPECT_NE(
        prom.find("asyncclock_run_info{backend=\"sparse\","
                  "model=\"looper\"} 1\n"),
        std::string::npos)
        << prom;
    EXPECT_NE(prom.find(expected), std::string::npos) << prom;
}

// ---------------------------------------------------------------------
// SnapshotPublisher

TEST(SnapshotPublisher, SeqRatesAndLatest)
{
    obs::MetricsRegistry reg;
    obs::Counter &ops = reg.counter("detector.ops_processed");
    obs::SnapshotPublisher pub(reg, /*intervalMs=*/0);

    EXPECT_EQ(pub.latest(), nullptr);
    ASSERT_TRUE(pub.due());

    obs::ProgressSample s;
    s.ops = 10;
    ops.inc(10);
    pub.publish(s);
    auto first = pub.latest();
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(first->seq, 1u);
    // No rates on the first publish (no baseline yet).
    EXPECT_TRUE(first->rates.empty());

    ops.inc(100);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    s.ops = 110;
    pub.publish(s);
    auto second = pub.latest();
    ASSERT_NE(second, nullptr);
    EXPECT_EQ(second->seq, 2u);
    ASSERT_EQ(second->rates.size(), 1u);
    EXPECT_EQ(second->rates[0].first, "detector.ops_processed");
    EXPECT_GT(second->rates[0].second, 0.0);

    EXPECT_TRUE(validJson(second->toJson())) << second->toJson();
    std::string progress = second->progressJson();
    EXPECT_TRUE(validJson(progress)) << progress;
    EXPECT_NE(progress.find("\"ops\":110"), std::string::npos);
    EXPECT_NE(progress.find("\"ops_per_sec\":"), std::string::npos);

    // The old snapshot stays immutable and readable.
    EXPECT_EQ(first->seq, 1u);
}

// ---------------------------------------------------------------------
// TelemetryServer over loopback

/** One-shot HTTP request against 127.0.0.1:port; returns the whole
 * response (status line + headers + body), "" on connect failure. */
std::string
httpRequest(std::uint16_t port, const std::string &target,
            const char *method = "GET")
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return "";
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        ::close(fd);
        return "";
    }
    std::string req = std::string(method) + " " + target +
                      " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                      "Connection: close\r\n\r\n";
    std::size_t off = 0;
    while (off < req.size()) {
        ssize_t n = ::send(fd, req.data() + off, req.size() - off, 0);
        if (n <= 0)
            break;
        off += static_cast<std::size_t>(n);
    }
    std::string resp;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        resp.append(buf, static_cast<std::size_t>(n));
    ::close(fd);
    return resp;
}

std::string
httpBody(const std::string &resp)
{
    std::size_t p = resp.find("\r\n\r\n");
    return p == std::string::npos ? "" : resp.substr(p + 4);
}

TEST(TelemetryServer, ServesAllEndpoints)
{
    obs::MetricsRegistry reg;
    reg.counter("detector.ops_processed").inc(5);
    reg.gauge("run.info", {{"model", "looper"}, {"backend", "sparse"}})
        .set(1);
    obs::SnapshotPublisher pub(reg, 0);
    obs::TelemetryServer server(pub);
    ASSERT_TRUE(server.start(0));  // kernel-assigned port
    ASSERT_GT(server.port(), 0);

    // /healthz answers before any publish; data paths say 503 rather
    // than serving an all-zero document.
    std::string health = httpRequest(server.port(), "/healthz");
    EXPECT_NE(health.find("200 OK"), std::string::npos);
    EXPECT_NE(health.find("\"snapshots\":0"), std::string::npos);
    EXPECT_NE(httpRequest(server.port(), "/metrics")
                  .find("503 Service Unavailable"),
              std::string::npos);

    pub.publish(obs::ProgressSample{});

    std::string metrics = httpRequest(server.port(), "/metrics");
    EXPECT_NE(metrics.find("200 OK"), std::string::npos);
    EXPECT_NE(metrics.find("text/plain; version=0.0.4"),
              std::string::npos);
    EXPECT_NE(
        metrics.find("# TYPE asyncclock_detector_ops_processed "
                     "counter"),
        std::string::npos);
    EXPECT_NE(metrics.find("asyncclock_run_info{backend=\"sparse\","
                           "model=\"looper\"} 1"),
              std::string::npos);

    std::string mj = httpBody(httpRequest(server.port(),
                                          "/metrics.json"));
    EXPECT_TRUE(validJson(mj)) << mj;
    EXPECT_NE(mj.find("\"asyncclock-metrics-v2\""),
              std::string::npos);
    EXPECT_NE(mj.find("\"seq\":1"), std::string::npos);

    std::string progress = httpBody(httpRequest(server.port(),
                                                "/progress"));
    EXPECT_TRUE(validJson(progress)) << progress;

    EXPECT_NE(httpRequest(server.port(), "/nope").find("404"),
              std::string::npos);
    EXPECT_NE(httpRequest(server.port(), "/metrics", "POST")
                  .find("405"),
              std::string::npos);

    EXPECT_GE(server.requestsServed(), 7u);
    server.stop();
}

TEST(TelemetryServer, RepeatedStartStopIsDeathFree)
{
    obs::MetricsRegistry reg;
    obs::SnapshotPublisher pub(reg, 0);
    pub.publish(obs::ProgressSample{});
    for (int round = 0; round < 3; ++round) {
        obs::TelemetryServer server(pub);
        ASSERT_TRUE(server.start(0));
        EXPECT_NE(httpRequest(server.port(), "/healthz")
                      .find("200 OK"),
                  std::string::npos);
        server.stop();
        server.stop();  // idempotent
        // A fresh server can rebind immediately.
        ASSERT_TRUE(server.start(0));
        // Destructor stops the second incarnation.
    }
}

/** The TSan target: a detector run publishing on its own thread while
 * a scraper hammers every endpoint from another. Scrapes must only
 * touch frozen snapshots, never the live registry. */
TEST(TelemetryServer, ConcurrentScrapeWhileDetecting)
{
    workload::AppProfile profile =
        workload::profileByName("AnyMemo", 0.005);
    workload::GeneratedApp app = workload::generateApp(profile);

    obs::MetricsRegistry registry;
    report::FastTrackChecker checker;
    core::AsyncClockDetector det(app.trace, checker);
    det.attachObs(obs::ObsContext{&registry});

    obs::SnapshotPublisher pub(registry, 0);
    obs::TelemetryServer server(pub);
    ASSERT_TRUE(server.start(0));
    std::uint16_t port = server.port();

    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> scrapes{0};
    std::thread scraper([&] {
        const char *paths[] = {"/metrics", "/metrics.json",
                               "/progress", "/healthz"};
        unsigned k = 0;
        while (!done.load(std::memory_order_relaxed)) {
            if (!httpRequest(port, paths[k++ % 4]).empty())
                scrapes.fetch_add(1, std::memory_order_relaxed);
        }
    });

    // Pipeline thread: process + publish, the analyzer loop's shape.
    std::uint64_t n = 0;
    while (det.processNext()) {
        if ((++n % 64) == 0) {
            obs::ProgressSample s;
            s.ops = n;
            s.races = checker.races().size();
            pub.publishIfDue(s);
        }
    }
    obs::ProgressSample last;
    last.ops = n;
    pub.publish(last);

    done.store(true, std::memory_order_relaxed);
    scraper.join();
    server.stop();

    EXPECT_GT(n, 0u);
    EXPECT_GT(scrapes.load(), 0u);
    auto snap = pub.latest();
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(snap->progress.ops, n);
}

// ---------------------------------------------------------------------
// EventLog

TEST(EventLog, WritesWellFormedJsonl)
{
    std::FILE *f = std::tmpfile();
    ASSERT_NE(f, nullptr);
    {
        obs::EventLog log(f);
        log.log(obs::EventLog::Severity::Info, "checkpoint.saved",
                "1024 access(es) checked", 4096);
        log.log(obs::EventLog::Severity::Warn, "pressure.shrink",
                "window halved to 60000 ms", 5000);
        // Hostile message: quotes, backslash, newline, control char.
        log.log(obs::EventLog::Severity::Error, "shard.watchdog",
                "path \"C:\\tmp\"\nnext\tline", 6000);
        EXPECT_EQ(log.eventsLogged(), 3u);
    }

    std::rewind(f);
    std::vector<std::string> lines;
    char buf[4096];
    while (std::fgets(buf, sizeof(buf), f))
        lines.emplace_back(buf);
    std::fclose(f);

    ASSERT_EQ(lines.size(), 3u);
    for (std::size_t k = 0; k < lines.size(); ++k) {
        std::string line = lines[k];
        ASSERT_FALSE(line.empty());
        ASSERT_EQ(line.back(), '\n');
        line.pop_back();
        EXPECT_TRUE(validJson(line)) << line;
        std::size_t p = line.find("\"seq\":");
        ASSERT_NE(p, std::string::npos);
        std::uint64_t seq =
            std::strtoull(line.c_str() + p + 6, nullptr, 10);
        EXPECT_EQ(seq, k);  // monotonic, gap-free, from 0
    }
    EXPECT_NE(lines[0].find("\"sev\":\"info\""), std::string::npos);
    EXPECT_NE(lines[0].find("\"kind\":\"checkpoint.saved\""),
              std::string::npos);
    EXPECT_NE(lines[0].find("\"op\":4096"), std::string::npos);
    EXPECT_NE(lines[1].find("\"sev\":\"warn\""), std::string::npos);
    EXPECT_NE(lines[2].find("\"sev\":\"error\""), std::string::npos);
}

TEST(EventLog, ConcurrentWritersKeepSeqTotalOrder)
{
    std::FILE *f = std::tmpfile();
    ASSERT_NE(f, nullptr);
    constexpr unsigned kThreads = 4, kPerThread = 50;
    {
        obs::EventLog log(f);
        std::vector<std::thread> writers;
        for (unsigned t = 0; t < kThreads; ++t) {
            writers.emplace_back([&log, t] {
                for (unsigned k = 0; k < kPerThread; ++k)
                    log.log(obs::EventLog::Severity::Info,
                            "shard.watchdog", "tick", t * 1000 + k);
            });
        }
        for (std::thread &t : writers)
            t.join();
        EXPECT_EQ(log.eventsLogged(), kThreads * kPerThread);
    }

    std::rewind(f);
    char buf[4096];
    std::uint64_t count = 0;
    while (std::fgets(buf, sizeof(buf), f)) {
        std::string line(buf);
        line.pop_back();
        EXPECT_TRUE(validJson(line)) << line;
        std::size_t p = line.find("\"seq\":");
        ASSERT_NE(p, std::string::npos);
        std::uint64_t seq =
            std::strtoull(line.c_str() + p + 6, nullptr, 10);
        EXPECT_EQ(seq, count);  // gap-free despite contention
        ++count;
    }
    std::fclose(f);
    EXPECT_EQ(count, kThreads * kPerThread);
}

// ---------------------------------------------------------------------
// WarnTap

TEST(WarnTap, CountsEveryWarnAndSuppressedOnes)
{
    std::FILE *f = std::tmpfile();
    ASSERT_NE(f, nullptr);
    obs::MetricsRegistry reg;
    {
        obs::EventLog events(f);
        obs::WarnTap tap(reg, &events);
        // A key unique to this test: the rate limiter's state is
        // process-global and never resets.
        const std::string key = "telemetry_test.warn_tap";
        for (int k = 0; k < 8; ++k)
            warnRateLimited(key, "synthetic warning", /*limit=*/3);
        warn("plain warning");

        obs::MetricsSnapshot snap = reg.snapshot();
        std::uint64_t total = 0, suppressed = 0;
        for (const auto &[n, v] : snap.counters) {
            if (n == "log.warnings_total")
                total = v;
            if (n == "log.warnings_suppressed")
                suppressed = v;
        }
        EXPECT_EQ(total, 9u);       // all 8 rate-limited + 1 plain
        EXPECT_EQ(suppressed, 5u);  // the 5 past the limit of 3
        // Only non-suppressed calls become events: 3 + 1.
        EXPECT_EQ(events.eventsLogged(), 4u);
    }
    std::fclose(f);

    // The tap is gone: further warns must not touch the registry.
    warnOnce("telemetry_test.after_tap", "untapped");
    obs::MetricsSnapshot snap = reg.snapshot();
    for (const auto &[n, v] : snap.counters) {
        if (n == "log.warnings_total") {
            EXPECT_EQ(v, 9u);
        }
    }
}

// ---------------------------------------------------------------------
// TaskGraph observability

TEST(TaskGraphObs, GenerationRecordsCountersAndGauges)
{
    obs::MetricsRegistry reg;
    workload::AsyncProfile profile =
        workload::asyncProfileByName("AsyncFanOut");
    profile.obs.metrics = &reg;
    workload::GeneratedAsyncApp app =
        workload::generateAsyncApp(profile);

    obs::MetricsSnapshot snap = reg.snapshot();
    std::uint64_t spawned = 0, settled = 0, cancelled = 0;
    for (const auto &[n, v] : snap.counters) {
        if (n == "taskgraph.tasks_spawned")
            spawned = v;
        if (n == "taskgraph.tasks_settled")
            settled = v;
        if (n == "taskgraph.tasks_cancelled")
            cancelled = v;
    }
    EXPECT_GT(spawned, 0u);
    // Every spawned task eventually settles (run() drains the graph).
    EXPECT_EQ(settled, spawned);
    EXPECT_EQ(cancelled, app.cancelledTasks);

    bool sawParked = false, sawFree = false, sawPeak = false;
    for (const auto &[n, v] : snap.gauges) {
        if (n == "taskgraph.parked") {
            sawParked = true;
            EXPECT_EQ(v, 0);  // nothing left parked after the drain
        }
        if (n == "taskgraph.executors_free") {
            sawFree = true;
            EXPECT_EQ(v, static_cast<std::int64_t>(profile.executors));
        }
        if (n == "taskgraph.ready_peak") {
            sawPeak = true;
            EXPECT_GT(v, 0);
        }
    }
    EXPECT_TRUE(sawParked);
    EXPECT_TRUE(sawFree);
    EXPECT_TRUE(sawPeak);
}

// ---------------------------------------------------------------------
// Per-phase latency attribution

TEST(PhaseTiming, HistogramsCoverTheRun)
{
    workload::AppProfile profile =
        workload::profileByName("AnyMemo", 0.005);
    workload::GeneratedApp app = workload::generateApp(profile);

    obs::MetricsRegistry reg;
    report::FastTrackChecker checker;
    core::DetectorConfig cfg;
    cfg.phaseTiming = true;
    core::AsyncClockDetector det(app.trace, checker, cfg);
    det.attachObs(obs::ObsContext{&reg});
    det.runAll();
    ASSERT_GT(det.opsProcessed(), 0u);

    // The run.info gauge marks the (model, backend) pair. The
    // backend label follows whatever backend the run used (cfg
    // defaults to $ASYNCCLOCK_CLOCK), so derive it the same way.
    const char *backend = clock::backendName(cfg.clockBackend);
    obs::MetricsSnapshot snap = reg.snapshot();
    std::string info = obs::seriesName(
        "run.info", {{"model", "looper"}, {"backend", backend}});
    bool sawInfo = false;
    for (const auto &[n, v] : snap.gauges) {
        if (n == info) {
            sawInfo = true;
            EXPECT_EQ(v, 1);
        }
    }
    EXPECT_TRUE(sawInfo);

    // One histogram per phase, fully labeled; decode and model_apply
    // are observed on every op.
    const char *phases[] = {"decode", "model_apply", "clock_join",
                            "race_check", "gc_sweep"};
    std::uint64_t totalNs = 0;
    for (const char *phase : phases) {
        std::string name = obs::seriesName(
            "detector.phase_ns", {{"phase", phase},
                                  {"model", "looper"},
                                  {"backend", backend}});
        bool found = false;
        for (const obs::HistogramSnapshot &h : snap.histograms) {
            if (h.name != name)
                continue;
            found = true;
            totalNs += h.sum;
            if (std::strcmp(phase, "decode") == 0 ||
                std::strcmp(phase, "model_apply") == 0) {
                EXPECT_EQ(h.count, det.opsProcessed()) << phase;
            }
        }
        EXPECT_TRUE(found) << name;
    }

    // The five buckets partition the measured per-op wall time: their
    // totals equal the engine's aggregate exactly.
    const std::uint64_t *totals = det.phaseTotalsNs();
    std::uint64_t engineTotal = 0;
    for (std::size_t k = 0; k < core::kNumPhases; ++k)
        engineTotal += totals[k];
    EXPECT_GT(engineTotal, 0u);
    EXPECT_EQ(totalNs, engineTotal);
}

TEST(PhaseTiming, OffByDefaultAndUnregistered)
{
    workload::AppProfile profile =
        workload::profileByName("AnyMemo", 0.005);
    workload::GeneratedApp app = workload::generateApp(profile);

    obs::MetricsRegistry reg;
    report::FastTrackChecker checker;
    core::AsyncClockDetector det(app.trace, checker);
    det.attachObs(obs::ObsContext{&reg});
    det.runAll();

    obs::MetricsSnapshot snap = reg.snapshot();
    for (const obs::HistogramSnapshot &h : snap.histograms)
        EXPECT_EQ(h.name.find("detector.phase_ns"),
                  std::string::npos);
    const std::uint64_t *totals = det.phaseTotalsNs();
    for (std::size_t k = 0; k < core::kNumPhases; ++k)
        EXPECT_EQ(totals[k], 0u);
}

} // namespace
} // namespace asyncclock
