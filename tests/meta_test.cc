/**
 * @file
 * Unit tests for the AsyncClock primitive (join, identity reduction),
 * the atomic/generalized clocks, the metadata registry, and the
 * cycle-safety of InvPtr/WeakPtr under invalidation — a regression
 * test for the double-free found when mutually referencing event
 * metas were invalidated by the time window.
 */

#include <gtest/gtest.h>

#include "core/meta.hh"

namespace asyncclock::core {
namespace {

TEST(AsyncClockPrimitive, UpdateKeepsLaterSend)
{
    MetaRegistry reg;
    auto a = EventRef::make(reg);
    auto b = EventRef::make(reg);
    AsyncClock ac;
    ac.update(0, a, 5);
    ac.update(0, b, 3);  // older send: ignored
    ASSERT_NE(ac.find(0), nullptr);
    EXPECT_TRUE(ac.find(0)->ev.sameAs(a));
    ac.update(0, b, 9);  // newer send: replaces
    EXPECT_TRUE(ac.find(0)->ev.sameAs(b));
    EXPECT_EQ(ac.find(0)->sendTick, 9u);
}

TEST(AsyncClockPrimitive, JoinIsPerChainLatest)
{
    MetaRegistry reg;
    auto a = EventRef::make(reg), b = EventRef::make(reg),
         c = EventRef::make(reg);
    AsyncClock x, y;
    x.update(0, a, 5);
    x.update(1, b, 2);
    y.update(1, c, 7);
    y.update(2, a, 1);
    x.joinWith(y);
    EXPECT_TRUE(x.find(0)->ev.sameAs(a));
    EXPECT_TRUE(x.find(1)->ev.sameAs(c));  // 7 > 2
    EXPECT_TRUE(x.find(2)->ev.sameAs(a));
    EXPECT_EQ(x.size(), 3u);
}

TEST(AsyncClockPrimitive, JoinIdempotentAndCommutative)
{
    MetaRegistry reg;
    auto a = EventRef::make(reg), b = EventRef::make(reg);
    AsyncClock x, y;
    x.update(0, a, 5);
    y.update(0, b, 8);
    y.update(3, a, 2);

    AsyncClock xy = x;
    xy.joinWith(y);
    AsyncClock yx = y;
    yx.joinWith(x);
    EXPECT_EQ(xy.size(), yx.size());
    EXPECT_TRUE(xy.find(0)->ev.sameAs(yx.find(0)->ev));

    AsyncClock xx = x;
    xx.joinWith(x);
    EXPECT_EQ(xx.size(), x.size());
    EXPECT_EQ(xx.find(0)->sendTick, 5u);
}

TEST(AsyncClockPrimitive, IdentityReduction)
{
    MetaRegistry reg;
    auto a = EventRef::make(reg), b = EventRef::make(reg);
    AsyncClock ac;
    ac.update(0, a, 1);
    ac.update(1, a, 2);
    ac.update(2, a, 3);
    EXPECT_EQ(a.refCount(), 4u);  // local + 3 entries
    ac.reduceToIdentity(7, b, 10);
    EXPECT_EQ(ac.size(), 1u);
    EXPECT_TRUE(ac.find(7)->ev.sameAs(b));
    EXPECT_EQ(a.refCount(), 1u);  // displaced references dropped
}

TEST(AsyncClockPrimitive, RefcountReachesZeroReclaims)
{
    MetaRegistry reg;
    {
        AsyncClock ac;
        {
            auto a = EventRef::make(reg);
            ac.update(0, a, 1);
            EXPECT_EQ(reg.live, 1u);
        }
        // Only the clock holds it now.
        EXPECT_EQ(reg.live, 1u);
        ac.clear();
        EXPECT_EQ(reg.live, 0u);
    }
    EXPECT_EQ(reg.destroyed, 1u);
}

TEST(AtomicSetOps, JoinKeepsLaterBegin)
{
    MetaRegistry reg;
    auto a = EventRef::make(reg), b = EventRef::make(reg);
    AtomicSet x, y;
    x[3][0] = {a, 5};
    y[3][0] = {b, 9};
    y[4][1] = {a, 2};
    joinAtomicSet(x, y);
    EXPECT_TRUE(x[3][0].ev.sameAs(b));
    EXPECT_EQ(x[3][0].beginTick, 9u);
    EXPECT_TRUE(x[4][1].ev.sameAs(a));
}

TEST(ACSetOps, JoinAndBytes)
{
    MetaRegistry reg;
    auto a = EventRef::make(reg);
    ACSet x, y;
    y[0].update(0, a, 1);
    y[5].update(2, a, 3);
    joinACSet(x, y);
    EXPECT_EQ(x.size(), 2u);
    EXPECT_GT(acSetBytes(x), 0u);
    EXPECT_EQ(atomicSetBytes(AtomicSet{}), 0u);
}

TEST(MetaRegistry, IntrusiveListTracksLifecycles)
{
    MetaRegistry reg;
    auto a = EventRef::make(reg);
    auto b = EventRef::make(reg);
    auto c = EventRef::make(reg);
    EXPECT_EQ(reg.live, 3u);
    EXPECT_EQ(reg.livePeak, 3u);
    unsigned count = 0;
    for (EventMeta *m = reg.head; m; m = m->next)
        ++count;
    EXPECT_EQ(count, 3u);
    b.reset();  // unlink the middle element
    count = 0;
    for (EventMeta *m = reg.head; m; m = m->next)
        ++count;
    EXPECT_EQ(count, 2u);
    a.reset();
    c.reset();
    EXPECT_EQ(reg.live, 0u);
    EXPECT_EQ(reg.destroyed, 3u);
    EXPECT_EQ(reg.livePeak, 3u);
}

TEST(MetaRegistry, ByteSizeGrowsWithContent)
{
    MetaRegistry reg;
    auto a = EventRef::make(reg);
    std::uint64_t empty = a->byteSize();
    a->sendVC.raise(0, 1);
    a->endACs[0].update(0, a /* harmless self for sizing */, 1);
    EXPECT_GT(a->byteSize(), empty);
    a->endACs.clear();  // break the self-reference before teardown
}

// ----------------------------------------------------------------
// Cycle-safety regression tests (the time-window double-free).
// ----------------------------------------------------------------

TEST(CycleSafety, MutualReferencesInvalidateCleanly)
{
    MetaRegistry reg;
    auto a = EventRef::make(reg);
    auto b = EventRef::make(reg);
    // a's end clock holds b and vice versa (as happens for events
    // that inherit each other's ends across queues).
    a->endACs[0].update(0, b, 1);
    b->endACs[0].update(1, a, 2);
    // Drop the external handles: the cycle keeps both alive.
    WeakPtr<EventMeta> weakA(a);
    a.reset();
    b.reset();
    EXPECT_EQ(reg.live, 2u);
    // The window invalidates a: its destructor drops the last
    // reference to b, whose destructor drops the cycle edge back to
    // a (already being destroyed) — this must not double-free.
    weakA.invalidate();
    EXPECT_EQ(reg.live, 0u);
    EXPECT_EQ(reg.destroyed, 2u);
    EXPECT_EQ(weakA.get(), nullptr);
}

TEST(CycleSafety, ThreeCycleThroughStrongReset)
{
    MetaRegistry reg;
    auto a = EventRef::make(reg);
    auto b = EventRef::make(reg);
    auto c = EventRef::make(reg);
    a->endACs[0].update(0, b, 1);
    b->endACs[0].update(0, c, 1);
    c->endACs[0].update(0, a, 1);
    InvPtr<EventMeta> handle = a;
    a.reset();
    b.reset();
    c.reset();
    EXPECT_EQ(reg.live, 3u);
    handle.invalidate();  // unwinds the whole ring
    EXPECT_EQ(reg.live, 0u);
}

TEST(CycleSafety, WeakPtrOutlivesInvalidation)
{
    MetaRegistry reg;
    WeakPtr<EventMeta> weak;
    {
        auto a = EventRef::make(reg);
        weak = WeakPtr<EventMeta>(a);
        EXPECT_NE(weak.get(), nullptr);
    }
    // Strong ref gone: payload reclaimed, weak observes null, and
    // dropping the weak releases the control block (ASan-checked).
    EXPECT_EQ(weak.get(), nullptr);
    weak.invalidate();  // idempotent on dead payloads
    weak.reset();
}

} // namespace
} // namespace asyncclock::core
