/**
 * @file
 * Tests for the workload generator: every generated trace validates,
 * is deterministic in its seed, has the promised structure (event
 * volumes, priority mix, seeded ground truth), and the dedicated
 * pattern generators have their documented shapes.
 */

#include <gtest/gtest.h>

#include <set>

#include "gold/closure.hh"
#include "trace/trace.hh"
#include "trace/trace_io.hh"
#include "workload/workload.hh"

namespace asyncclock::workload {
namespace {

using trace::SeedLabel;
using trace::SendKind;
using trace::Trace;

AppProfile
smallProfile(std::uint64_t seed)
{
    AppProfile p;
    p.seed = seed;
    p.looperEvents = 120;
    p.binderEvents = 10;
    p.spanMs = 30000;
    return p;
}

TEST(Workload, GeneratedTraceValidates)
{
    GeneratedApp app = generateApp(smallProfile(1));
    EXPECT_EQ(app.trace.validate(true), "");
    EXPECT_GT(app.trace.numOps(), 200u);
}

TEST(Workload, DeterministicInSeed)
{
    GeneratedApp a = generateApp(smallProfile(7));
    GeneratedApp b = generateApp(smallProfile(7));
    EXPECT_EQ(trace::writeTraceToString(a.trace),
              trace::writeTraceToString(b.trace));
    GeneratedApp c = generateApp(smallProfile(8));
    EXPECT_NE(trace::writeTraceToString(a.trace),
              trace::writeTraceToString(c.trace));
}

TEST(Workload, EventVolumeNearTarget)
{
    AppProfile p = smallProfile(3);
    p.looperEvents = 300;
    GeneratedApp app = generateApp(p);
    auto stats = app.trace.stats();
    // Within 40% of target (children + seeds add events; barrier
    // stalls may strand a few).
    EXPECT_GT(stats.looperEvents, 180u);
    EXPECT_LT(stats.looperEvents, 500u);
    EXPECT_GT(stats.binderEvents, 0u);
}

TEST(Workload, PriorityMixPresent)
{
    AppProfile p = smallProfile(4);
    p.looperEvents = 400;
    GeneratedApp app = generateApp(p);
    unsigned delayed = 0, atTime = 0, atFront = 0, async = 0,
             fifo = 0;
    for (const auto &ev : app.trace.events()) {
        if (ev.sendOp == trace::kInvalidId)
            continue;
        if (ev.attrs.async)
            ++async;
        switch (ev.attrs.kind) {
          case SendKind::Delayed:
            ev.attrs.time ? ++delayed : ++fifo;
            break;
          case SendKind::AtTime: ++atTime; break;
          case SendKind::AtFront: ++atFront; break;
        }
    }
    EXPECT_GT(delayed, 0u);
    EXPECT_GT(atTime, 0u);
    EXPECT_GT(atFront, 0u);
    EXPECT_GT(async, 0u);
    EXPECT_GT(fifo, delayed + atTime + atFront);  // FIFO dominates
}

TEST(Workload, SeededTruthMatchesVarLabels)
{
    AppProfile p = smallProfile(5);
    GeneratedApp app = generateApp(p);
    EXPECT_EQ(app.truth.harmful, p.seededHarmful);
    EXPECT_EQ(app.truth.typeI, p.seededTypeI);
    EXPECT_EQ(app.truth.typeII, p.seededTypeII);
    EXPECT_EQ(app.truth.commutative, p.seededCommutative);
    unsigned harmful = 0, typeI = 0, typeII = 0, comm = 0;
    for (const auto &v : app.trace.vars()) {
        switch (v.seedLabel) {
          case SeedLabel::Harmful: ++harmful; break;
          case SeedLabel::HarmlessTypeI: ++typeI; break;
          case SeedLabel::HarmlessTypeII: ++typeII; break;
          case SeedLabel::HarmlessCommutative: ++comm; break;
          default: break;
        }
    }
    EXPECT_EQ(harmful, p.seededHarmful);
    EXPECT_EQ(typeI, p.seededTypeI);
    EXPECT_EQ(typeII, p.seededTypeII);
    EXPECT_EQ(comm, p.seededCommutative);
}

TEST(Workload, SeededRacesAreRealAndOnlyOnLabeledVars)
{
    // On a small app, the gold oracle must find races exactly on the
    // seeded variables (benign traffic is confined by construction).
    AppProfile p = smallProfile(6);
    p.looperEvents = 80;
    p.binderEvents = 6;
    GeneratedApp app = generateApp(p);
    ASSERT_EQ(app.trace.validate(true), "");
    gold::Closure hb(app.trace);
    std::set<trace::VarId> racyVars;
    for (const auto &race : hb.races())
        racyVars.insert(app.trace.op(race.first).target);
    unsigned expected = p.seededHarmful + p.seededTypeI +
                        p.seededTypeII + p.seededCommutative +
                        p.seededFrameworkNoise;
    EXPECT_EQ(racyVars.size(), expected);
    for (trace::VarId v : racyVars) {
        EXPECT_NE(app.trace.var(v).seedLabel, SeedLabel::None)
            << "unplanned race on var " << app.trace.var(v).name;
    }
}

TEST(Workload, BarcodePatternShape)
{
    Trace tr = barcodePattern(20);
    EXPECT_EQ(tr.validate(true), "");
    unsigned atTime = 0;
    for (const auto &ev : tr.events()) {
        if (ev.sendOp != trace::kInvalidId &&
            ev.attrs.kind == SendKind::AtTime) {
            ++atTime;
        }
    }
    EXPECT_EQ(atTime, 20u);
    // 20 inputs + 20 decodes (the innermost input is an empty tail).
    EXPECT_GE(tr.events().size(), 40u);
    gold::Closure hb(tr);
    EXPECT_TRUE(hb.races().empty());
}

TEST(Workload, PingPongPatternShape)
{
    Trace tr = pingPongPattern(5, 4);
    EXPECT_EQ(tr.validate(true), "");
    EXPECT_EQ(tr.events().size(), 5u * 4u);
    gold::Closure hb(tr);
    EXPECT_TRUE(hb.races().empty());
}

TEST(Workload, MultiPathPatternShape)
{
    Trace tr = multiPathPattern(8);
    EXPECT_EQ(tr.validate(true), "");
    EXPECT_EQ(tr.events().size(), 8u * 3u);
    gold::Closure hb(tr);
    EXPECT_TRUE(hb.races().empty());
}

TEST(Workload, Table2ProfilesComplete)
{
    auto profiles = table2Profiles(0.05);
    ASSERT_EQ(profiles.size(), 20u);
    EXPECT_EQ(profiles[0].name, "AnyMemo");
    EXPECT_EQ(profiles[19].name, "ATimeTracker");
    // Ordered by looper events, like Table 2.
    for (std::size_t i = 1; i < profiles.size(); ++i)
        EXPECT_GE(profiles[i - 1].looperEvents,
                  profiles[i].looperEvents);
    EXPECT_EQ(profileByName("VLCPlayer", 0.05).name, "VLCPlayer");
}

TEST(Workload, SmallProfileAppGeneratesQuickly)
{
    // Smoke test at a size the property sweeps will use.
    AppProfile p = smallProfile(11);
    p.looperEvents = 60;
    GeneratedApp app = generateApp(p);
    EXPECT_EQ(app.trace.validate(true), "");
    EXPECT_LT(app.trace.numOps(), 20000u);
}

} // namespace
} // namespace asyncclock::workload
