/**
 * @file
 * Clock-backend comparison on fig-9 scaling workloads: the same
 * detector pass run under the sparse, COW, and tree backends, plus a
 * pure join micro-loop per backend.
 *
 * For each backend the harness reports analysis throughput (trace
 * ops/sec), peak clock metadata bytes (the MemCat::AsyncClock pool),
 * and the clock substrate's own counters (joins, fast paths, entries
 * visited — the measure of how much work pruning/sharing avoided).
 * Race counts must agree across backends; a mismatch is a correctness
 * bug and fails the run.
 *
 * Usage: bench_clock_backends [--app=AnyMemo] [--events=3000]
 *                             [--json-out=PATH]
 *
 * --json-out writes a machine-readable summary (CI archives it as
 * BENCH_clocks.json).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "clock/policy.hh"
#include "clock/vector_clock.hh"
#include "support/format.hh"
#include "support/rng.hh"
#include "support/stats.hh"
#include "workload/workload.hh"

using namespace asyncclock;
using namespace asyncclock::bench;

namespace {

struct BackendResult
{
    std::string name;
    double opsPerSec = 0;
    std::uint64_t peakClockBytes = 0;
    std::uint64_t races = 0;
    std::uint64_t joins = 0;
    std::uint64_t joinFastPaths = 0;
    std::uint64_t joinEntriesVisited = 0;
    double microJoinsPerSec = 0;
};

/** One measured detector pass under @p backend. */
BackendResult
runBackend(const trace::Trace &tr, clock::Backend backend)
{
    clock::resetClockStats();
    core::DetectorConfig cfg;
    cfg.windowMs = 0;
    cfg.clockBackend = backend;

    report::FastTrackChecker checker;
    core::AsyncClockDetector det(tr, checker, cfg);
    MemStats mem;
    auto start = std::chrono::steady_clock::now();
    det.runAll(&mem, 4096);
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();

    const clock::ClockStats &cs = clock::clockStats();
    BackendResult out;
    out.name = clock::backendName(backend);
    out.opsPerSec = double(det.opsProcessed()) /
                    (secs > 0 ? secs : 1e-9);
    out.peakClockBytes = mem.peak(MemCat::AsyncClock);
    out.races = checker.racesFound();
    out.joins = cs.joins.load();
    out.joinFastPaths = cs.joinFastPaths.load();
    out.joinEntriesVisited = cs.joinEntriesVisited.load();
    return out;
}

/**
 * Pure join throughput under the detector's ownership discipline:
 * K chains tick and export; a rolling target joins the exports. This
 * is the loop the paper's section 3.3 cost argument is about.
 */
double
microJoins(clock::Backend backend, unsigned chains, unsigned iters)
{
    std::vector<clock::VectorClock> owners(
        chains, clock::VectorClock(backend));
    std::vector<clock::VectorClock> exports(
        chains, clock::VectorClock(backend));
    std::vector<clock::Tick> ticks(chains, 0);
    Rng rng(99);
    // Pre-warm: give every owner a spread of entries.
    for (unsigned step = 0; step < chains * 8; ++step) {
        unsigned c = static_cast<unsigned>(rng.below(chains));
        unsigned d = static_cast<unsigned>(rng.below(chains));
        owners[c].joinWith(exports[d]);
        owners[c].tick(c, ++ticks[c]);
        exports[c] = owners[c];
    }
    auto start = std::chrono::steady_clock::now();
    for (unsigned i = 0; i < iters; ++i) {
        unsigned c = i % chains;
        unsigned d = (i * 7 + 3) % chains;
        owners[c].joinWith(exports[d]);
        if ((i & 63u) == 0) {
            owners[c].tick(c, ++ticks[c]);
            exports[c] = owners[c];
        }
    }
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    return double(iters) / (secs > 0 ? secs : 1e-9);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string app = argString(argc, argv, "app", "AnyMemo");
    unsigned events =
        static_cast<unsigned>(argDouble(argc, argv, "events", 3000));
    std::string jsonOut = argString(argc, argv, "json-out", "");

    trace::Trace tr = [&] {
        if (app == "BarcodeScanner")
            return workload::barcodePattern(events / 2);
        workload::AppProfile p = workload::profileByName(app, 1.0);
        p.looperEvents = events;
        p.binderEvents = std::max(5u, events / 20);
        p.spanMs = events * 150ull;
        return workload::generateApp(p).trace;
    }();

    const clock::Backend backends[] = {clock::Backend::Sparse,
                                       clock::Backend::Cow,
                                       clock::Backend::Tree};

    std::printf("Clock backend comparison (%s, %u looper events)\n\n",
                app.c_str(), events);
    std::printf("%8s | %12s %12s %10s %12s %12s %14s\n", "backend",
                "ops/sec", "clock bytes", "joins", "fast paths",
                "entries", "micro joins/s");

    std::vector<BackendResult> results;
    for (clock::Backend b : backends) {
        BackendResult r = runBackend(tr, b);
        r.microJoinsPerSec = microJoins(b, 64, 200000);
        std::printf("%8s | %12.0f %12s %10llu %12llu %12llu %14.0f\n",
                    r.name.c_str(), r.opsPerSec,
                    humanBytes(r.peakClockBytes).c_str(),
                    (unsigned long long)r.joins,
                    (unsigned long long)r.joinFastPaths,
                    (unsigned long long)r.joinEntriesVisited,
                    r.microJoinsPerSec);
        results.push_back(r);
    }

    for (const BackendResult &r : results) {
        if (r.races != results[0].races) {
            std::fprintf(stderr,
                         "FAIL: %s found %llu races, %s found %llu\n",
                         r.name.c_str(), (unsigned long long)r.races,
                         results[0].name.c_str(),
                         (unsigned long long)results[0].races);
            return 1;
        }
    }
    std::printf("\nrace counts agree across backends (%llu)\n",
                (unsigned long long)results[0].races);

    if (!jsonOut.empty()) {
        FILE *f = std::fopen(jsonOut.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n", jsonOut.c_str());
            return 1;
        }
        std::fprintf(f,
                     "{\n  \"app\": \"%s\",\n  \"events\": %u,\n"
                     "  \"backends\": {\n",
                     app.c_str(), events);
        for (std::size_t i = 0; i < results.size(); ++i) {
            const BackendResult &r = results[i];
            std::fprintf(
                f,
                "    \"%s\": {\"ops_per_sec\": %.0f, "
                "\"peak_clock_bytes\": %llu, \"joins\": %llu, "
                "\"join_fast_paths\": %llu, "
                "\"join_entries_visited\": %llu, "
                "\"micro_joins_per_sec\": %.0f, \"races\": %llu}%s\n",
                r.name.c_str(), r.opsPerSec,
                (unsigned long long)r.peakClockBytes,
                (unsigned long long)r.joins,
                (unsigned long long)r.joinFastPaths,
                (unsigned long long)r.joinEntriesVisited,
                r.microJoinsPerSec, (unsigned long long)r.races,
                i + 1 < results.size() ? "," : "");
        }
        std::fprintf(f, "  }\n}\n");
        std::fclose(f);
        std::printf("wrote %s\n", jsonOut.c_str());
    }
    return 0;
}
