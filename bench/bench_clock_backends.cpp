/**
 * @file
 * Clock-backend comparison on fig-9 scaling workloads: the same
 * detector pass run under the sparse, COW, tree, and hybrid backends,
 * plus pure join/snapshot micro-loops per backend and a SIMD
 * vector-vs-scalar sweep of the sparse join kernel.
 *
 * For each backend the harness reports analysis throughput (trace
 * ops/sec), peak clock metadata bytes (the MemCat::AsyncClock pool),
 * and the clock substrate's own counters (joins, fast paths, entries
 * visited — the measure of how much work pruning/sharing avoided).
 * Race counts must agree across backends; a mismatch is a correctness
 * bug and fails the run.
 *
 * The micro columns are the hybrid backend's two-front scoreboard:
 * micro copies/s is where COW sharing wins (snapshot = refcount bump)
 * and micro joins/s under the tick discipline is where tree pruning
 * wins. CI gates on hybrid matching both champions at once.
 *
 * Usage: bench_clock_backends [--app=AnyMemo] [--events=3000]
 *                             [--json-out=PATH]
 *
 * --json-out writes a machine-readable summary (CI archives it as
 * BENCH_clocks.json).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "clock/hybrid_clock.hh"
#include "clock/policy.hh"
#include "clock/simd.hh"
#include "clock/tree_clock.hh"
#include "clock/vector_clock.hh"
#include "support/format.hh"
#include "support/rng.hh"
#include "support/stats.hh"
#include "workload/workload.hh"

using namespace asyncclock;
using namespace asyncclock::bench;

namespace {

struct BackendResult
{
    std::string name;
    double opsPerSec = 0;
    std::uint64_t peakClockBytes = 0;
    std::uint64_t races = 0;
    std::uint64_t joins = 0;
    std::uint64_t joinFastPaths = 0;
    std::uint64_t joinEntriesVisited = 0;
    double microJoinsPerSec = 0;
    double microCopiesPerSec = 0;
};

/** One measured detector pass under @p backend. */
BackendResult
runBackendOnce(const trace::Trace &tr, clock::Backend backend)
{
    // Detector GC can poison owner-rooted prune bits; reset so every
    // backend starts the measured pass from the same state.
    clock::TreeClock::resetPruneGuard();
    clock::HybridClock::resetPruneGuard();
    clock::resetClockStats();
    core::DetectorConfig cfg;
    cfg.windowMs = 0;
    cfg.clockBackend = backend;

    report::FastTrackChecker checker;
    core::AsyncClockDetector det(tr, checker, cfg);
    MemStats mem;
    auto start = std::chrono::steady_clock::now();
    det.runAll(&mem, 4096);
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();

    const clock::ClockStats &cs = clock::clockStats();
    BackendResult out;
    out.name = clock::backendName(backend);
    out.opsPerSec = double(det.opsProcessed()) /
                    (secs > 0 ? secs : 1e-9);
    out.peakClockBytes = mem.peak(MemCat::AsyncClock);
    out.races = checker.racesFound();
    out.joins = cs.joins.load();
    out.joinFastPaths = cs.joinFastPaths.load();
    out.joinEntriesVisited = cs.joinEntriesVisited.load();
    return out;
}

/** Best-of-N detector pass: the workload is deterministic, so every
 * attempt produces identical counts and only the wall clock varies.
 * Keeping the fastest attempt filters scheduler noise out of the
 * numbers CI gates on. */
BackendResult
runBackend(const trace::Trace &tr, clock::Backend backend)
{
    BackendResult best = runBackendOnce(tr, backend);
    for (int attempt = 1; attempt < 3; ++attempt) {
        BackendResult r = runBackendOnce(tr, backend);
        if (r.opsPerSec > best.opsPerSec)
            best = r;
    }
    return best;
}

/** Best-of-3 for a throughput lambda (same noise-filtering idea). */
template <typename Fn>
double
bestOf3(Fn &&fn)
{
    double best = fn();
    for (int attempt = 1; attempt < 3; ++attempt)
        best = std::max(best, fn());
    return best;
}

/**
 * Pure join throughput under the detector's ownership discipline:
 * K chains tick and export; a rolling target joins the exports. This
 * is the loop the paper's section 3.3 cost argument is about.
 */
double
microJoins(clock::Backend backend, unsigned chains, unsigned iters)
{
    std::vector<clock::VectorClock> owners(
        chains, clock::VectorClock(backend));
    std::vector<clock::VectorClock> exports(
        chains, clock::VectorClock(backend));
    std::vector<clock::Tick> ticks(chains, 0);
    Rng rng(99);
    // Pre-warm: give every owner a spread of entries.
    for (unsigned step = 0; step < chains * 8; ++step) {
        unsigned c = static_cast<unsigned>(rng.below(chains));
        unsigned d = static_cast<unsigned>(rng.below(chains));
        owners[c].joinWith(exports[d]);
        owners[c].tick(c, ++ticks[c]);
        exports[c] = owners[c];
    }
    auto start = std::chrono::steady_clock::now();
    for (unsigned i = 0; i < iters; ++i) {
        unsigned c = i % chains;
        unsigned d = (i * 7 + 3) % chains;
        owners[c].joinWith(exports[d]);
        if ((i & 63u) == 0) {
            owners[c].tick(c, ++ticks[c]);
            exports[c] = owners[c];
        }
    }
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    return double(iters) / (secs > 0 ? secs : 1e-9);
}

/**
 * Snapshot throughput: the detector's export step (`exports[c] =
 * owners[c]`) measured in isolation. COW-style backends answer with a
 * refcount bump; value backends pay a deep copy proportional to the
 * clock's width.
 */
double
microCopies(clock::Backend backend, unsigned chains, unsigned iters)
{
    clock::VectorClock owner(backend);
    clock::Tick t = 0;
    for (unsigned c = 0; c < chains; ++c)
        owner.raise(c, 1 + (c % 7));
    std::uint64_t sink = 0;
    auto start = std::chrono::steady_clock::now();
    for (unsigned i = 0; i < iters; ++i) {
        clock::VectorClock snap = owner;
        sink += snap.size();
        // Occasional owner mutation so sharing backends pay their
        // real-world break-on-write cost too.
        if ((i & 255u) == 0)
            owner.tick(0, ++t);
    }
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    if (sink == 0)
        std::fprintf(stderr, "microCopies: empty snapshots?\n");
    return double(iters) / (secs > 0 ? secs : 1e-9);
}

/** Vector-vs-scalar sweep of the sparse same-layout join kernel. */
struct SimdPoint
{
    unsigned entries = 0;
    double vectorJoinsPerSec = 0;
    double scalarJoinsPerSec = 0;
};

SimdPoint
simdJoinPoint(unsigned entries, unsigned iters)
{
    SimdPoint out;
    out.entries = entries;
    auto run = [&](bool enable) {
        bool was = clock::simdEnabled();
        clock::setSimdEnabled(enable);
        clock::VectorClock a(clock::Backend::Sparse);
        clock::VectorClock b(clock::Backend::Sparse);
        for (unsigned c = 0; c < entries; ++c) {
            a.raise(c, 1 + (c % 5));
            b.raise(c, 1 + ((c * 3) % 5));
        }
        auto start = std::chrono::steady_clock::now();
        for (unsigned i = 0; i < iters; ++i)
            a.joinWith(b);
        double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
        clock::setSimdEnabled(was);
        return double(iters) / (secs > 0 ? secs : 1e-9);
    };
    out.vectorJoinsPerSec = bestOf3([&] { return run(true); });
    out.scalarJoinsPerSec = bestOf3([&] { return run(false); });
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string app = argString(argc, argv, "app", "AnyMemo");
    unsigned events =
        static_cast<unsigned>(argDouble(argc, argv, "events", 3000));
    std::string jsonOut = argString(argc, argv, "json-out", "");

    trace::Trace tr = [&] {
        if (app == "BarcodeScanner")
            return workload::barcodePattern(events / 2);
        workload::AppProfile p = workload::profileByName(app, 1.0);
        p.looperEvents = events;
        p.binderEvents = std::max(5u, events / 20);
        p.spanMs = events * 150ull;
        return workload::generateApp(p).trace;
    }();

    const clock::Backend backends[] = {clock::Backend::Sparse,
                                       clock::Backend::Cow,
                                       clock::Backend::Tree,
                                       clock::Backend::Hybrid};

    std::printf("Clock backend comparison (%s, %u looper events)\n\n",
                app.c_str(), events);
    std::printf("%8s | %12s %12s %10s %12s %12s %14s %15s\n",
                "backend", "ops/sec", "clock bytes", "joins",
                "fast paths", "entries", "micro joins/s",
                "micro copies/s");

    std::vector<BackendResult> results;
    for (clock::Backend b : backends) {
        BackendResult r = runBackend(tr, b);
        r.microJoinsPerSec =
            bestOf3([&] { return microJoins(b, 64, 200000); });
        r.microCopiesPerSec =
            bestOf3([&] { return microCopies(b, 64, 200000); });
        std::printf(
            "%8s | %12.0f %12s %10llu %12llu %12llu %14.0f %15.0f\n",
            r.name.c_str(), r.opsPerSec,
            humanBytes(r.peakClockBytes).c_str(),
            (unsigned long long)r.joins,
            (unsigned long long)r.joinFastPaths,
            (unsigned long long)r.joinEntriesVisited,
            r.microJoinsPerSec, r.microCopiesPerSec);
        results.push_back(r);
    }

    const SimdPoint simdPoints[] = {simdJoinPoint(64, 200000),
                                    simdJoinPoint(256, 100000)};
    std::printf("\nSIMD sparse join kernel (isa=%s)\n",
                clock::simdIsa());
    std::printf("%8s | %14s %14s %8s\n", "entries", "vector j/s",
                "scalar j/s", "speedup");
    for (const SimdPoint &p : simdPoints)
        std::printf("%8u | %14.0f %14.0f %7.2fx\n", p.entries,
                    p.vectorJoinsPerSec, p.scalarJoinsPerSec,
                    p.vectorJoinsPerSec /
                        (p.scalarJoinsPerSec > 0 ? p.scalarJoinsPerSec
                                                 : 1e-9));

    for (const BackendResult &r : results) {
        if (r.races != results[0].races) {
            std::fprintf(stderr,
                         "FAIL: %s found %llu races, %s found %llu\n",
                         r.name.c_str(), (unsigned long long)r.races,
                         results[0].name.c_str(),
                         (unsigned long long)results[0].races);
            return 1;
        }
    }
    std::printf("\nrace counts agree across backends (%llu)\n",
                (unsigned long long)results[0].races);

    if (!jsonOut.empty()) {
        FILE *f = std::fopen(jsonOut.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n", jsonOut.c_str());
            return 1;
        }
        std::fprintf(f,
                     "{\n  \"app\": \"%s\",\n  \"events\": %u,\n"
                     "  \"backends\": {\n",
                     app.c_str(), events);
        for (std::size_t i = 0; i < results.size(); ++i) {
            const BackendResult &r = results[i];
            std::fprintf(
                f,
                "    \"%s\": {\"ops_per_sec\": %.0f, "
                "\"peak_clock_bytes\": %llu, \"joins\": %llu, "
                "\"join_fast_paths\": %llu, "
                "\"join_entries_visited\": %llu, "
                "\"micro_joins_per_sec\": %.0f, "
                "\"micro_copies_per_sec\": %.0f, "
                "\"races\": %llu}%s\n",
                r.name.c_str(), r.opsPerSec,
                (unsigned long long)r.peakClockBytes,
                (unsigned long long)r.joins,
                (unsigned long long)r.joinFastPaths,
                (unsigned long long)r.joinEntriesVisited,
                r.microJoinsPerSec, r.microCopiesPerSec,
                (unsigned long long)r.races,
                i + 1 < results.size() ? "," : "");
        }
        std::fprintf(f, "  },\n  \"simd\": {\n    \"isa\": \"%s\",\n",
                     clock::simdIsa());
        for (std::size_t i = 0;
             i < sizeof simdPoints / sizeof simdPoints[0]; ++i) {
            const SimdPoint &p = simdPoints[i];
            std::fprintf(
                f,
                "    \"join%u\": {\"vector_joins_per_sec\": %.0f, "
                "\"scalar_joins_per_sec\": %.0f, \"speedup\": %.3f}%s\n",
                p.entries, p.vectorJoinsPerSec, p.scalarJoinsPerSec,
                p.vectorJoinsPerSec /
                    (p.scalarJoinsPerSec > 0 ? p.scalarJoinsPerSec
                                             : 1e-9),
                i + 1 < sizeof simdPoints / sizeof simdPoints[0]
                    ? ","
                    : "");
        }
        std::fprintf(f, "  }\n}\n");
        std::fclose(f);
        std::printf("wrote %s\n", jsonOut.c_str());
    }
    return 0;
}
