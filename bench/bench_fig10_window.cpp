/**
 * @file
 * Fig 10 reproduction: recall and resource usage of the time-window
 * approximation across window sizes.
 *
 * For the paper's 8 selected applications, the harness analyzes each
 * trace with windows of 15s, 30s, 1min, 2min, 5min and no window, and
 * reports the percentage of race groups still found (relative to the
 * exact no-window run) together with total analysis time and peak
 * memory.
 *
 * Shape to check (paper section 7.5): recall is high and rises with
 * the window — ~96% at 2 minutes on the paper's testbed — while time
 * and especially memory drop sharply for small windows; all races
 * missed at 2 minutes were between events far apart in time.
 *
 * Usage: bench_fig10_window [--scale=0.02]
 */

#include <cstdio>
#include <set>
#include <vector>

#include "bench_util.hh"
#include "support/format.hh"
#include "workload/workload.hh"

using namespace asyncclock;
using namespace asyncclock::bench;

namespace {

/** Site-pair identities of the reported groups (for recall). */
std::set<std::pair<trace::SiteId, trace::SiteId>>
groupKeys(const report::ReportSummary &summary)
{
    std::set<std::pair<trace::SiteId, trace::SiteId>> out;
    for (const auto &g : summary.reported)
        out.insert({g.siteA, g.siteB});
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    double scale = argDouble(argc, argv, "scale", 0.05);
    const char *apps[] = {"AnyMemo",  "BarcodeScanner", "ConnectBot",
                          "FBReader", "Firefox",        "OIFileManager",
                          "Tomdroid", "VLCPlayer"};
    const std::uint64_t windows[] = {15000,  30000,  60000,
                                     120000, 300000, 0};
    const char *windowNames[] = {"15s", "30s", "1min",
                                 "2min", "5min", "inf"};

    // More far-apart seeded races than the default profile, so the
    // window trade-off is visible (the generator's gap distribution
    // has a tail beyond any finite window here).
    std::vector<workload::GeneratedApp> generated;
    std::uint64_t totalGroups = 0;
    for (const char *name : apps) {
        workload::AppProfile p = workload::profileByName(name, scale);
        p.seededHarmful = 4;
        p.seededTypeI = 3;
        p.seededTypeII = 3;
        // 15-minute traces so even the 5-minute window is meaningful.
        p.spanMs = 15 * 60 * 1000;
        generated.push_back(workload::generateApp(p));
    }

    std::printf("Fig 10 reproduction (scale %.3f): recall and "
                "resources vs window size,\naggregated over 8 apps\n\n",
                scale);
    std::printf("%6s | %10s | %10s | %10s\n", "window",
                "races kept", "total time", "peak mem");

    // Exact baselines per app.
    std::vector<std::set<std::pair<trace::SiteId, trace::SiteId>>>
        exact;
    for (const auto &app : generated) {
        core::DetectorConfig cfg;
        cfg.windowMs = 0;
        exact.push_back(groupKeys(runAsyncClock(app.trace, cfg).report));
        totalGroups += exact.back().size();
    }

    std::uint64_t falsePositives = 0;
    for (unsigned w = 0; w < 6; ++w) {
        double totalTime = 0;
        std::uint64_t peakMem = 0, kept = 0;
        for (std::size_t i = 0; i < generated.size(); ++i) {
            core::DetectorConfig cfg;
            cfg.windowMs = windows[w];
            RunResult r = runAsyncClock(generated[i].trace, cfg);
            totalTime += r.seconds;
            peakMem += r.peakBytes;
            for (const auto &key : groupKeys(r.report)) {
                if (exact[i].count(key))
                    ++kept;
                else
                    ++falsePositives;  // window only removes races
            }
        }
        std::printf("%6s | %9.1f%% | %9.3fs | %10s\n", windowNames[w],
                    100.0 * double(kept) /
                        double(std::max<std::uint64_t>(1, totalGroups)),
                    totalTime, humanBytes(peakMem).c_str());
    }
    std::printf("\nfalse positives across all windows: %llu (must be "
                "0 — the window only\n*assumes* extra orderings)\n",
                (unsigned long long)falsePositives);
    std::printf("\nPaper: >=96%% of races kept at a 2-minute window; "
                "every missed race was\nbetween events far apart in "
                "time (and manually harmless).\n");
    return 0;
}
