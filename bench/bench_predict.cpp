/**
 * @file
 * Predictive-tier overhead benchmark: what does keeping the second,
 * weakened-ordering clock set cost on top of plain HB detection?
 *
 * Two costs with very different shapes:
 *
 *  - the *clock-pass* overhead — ShbEngine + CandidateWindow over the
 *    same trace the detector consumed. This is the always-on, per-op
 *    cost of --predict and scales linearly like the detector itself,
 *    so it is the number the guard pins: the combined pass must stay
 *    under 25% over HB-only on the AppSim workload (exit 1 when it
 *    does not; CI enforces the ratio from the JSON too).
 *  - the *funnel* cost — two gold closures plus replay per candidate
 *    class. That is quadratic machinery, explicitly bounded by
 *    --verify-max-ops and the candidate caps, and skipped entirely on
 *    large traces; it is measured on a small AppSim variant and
 *    reported, not gated.
 *
 * Usage: bench_predict [--scale=1.0] [--json-out=PATH]
 *
 * --json-out writes a machine-readable summary (CI archives it as
 * BENCH_predict.json).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_util.hh"
#include "predict/candidates.hh"
#include "predict/predict.hh"
#include "predict/shb.hh"
#include "report/fasttrack.hh"
#include "workload/workload.hh"

using namespace asyncclock;
using namespace asyncclock::bench;

namespace {

/** The benchmark workload: a mid-size simulated app exercising every
 * looper feature (the Table 2 profiles' shape, one fixed parameter
 * set so the guard compares like with like across runs). */
workload::AppProfile
appSimProfile(double scale, unsigned events)
{
    workload::AppProfile p;
    p.name = "AppSim";
    p.seed = 20260808;
    p.loopers = 4;
    p.workers = 6;
    p.looperEvents = std::max(
        1u, static_cast<unsigned>(events * scale + 0.5));
    p.binderEvents = p.looperEvents / 10;
    p.handles = 8;
    return p;
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** One timed HB detector pass. */
double
hbPass(const trace::Trace &tr)
{
    report::FastTrackChecker checker;
    core::AsyncClockDetector det(tr, checker);
    auto start = std::chrono::steady_clock::now();
    det.runAll();
    return secondsSince(start);
}

/** One timed HB + weak-clock pass (what --predict adds before the
 * replay funnel). */
double
predictPass(const trace::Trace &tr, std::uint64_t *candidates,
            std::uint64_t *windowDrops)
{
    report::FastTrackChecker checker;
    core::AsyncClockDetector det(tr, checker);
    predict::ShbEngine eng(tr);
    predict::CandidateWindow window;
    auto start = std::chrono::steady_clock::now();
    det.runAll();
    eng.run(window);
    double sec = secondsSince(start);
    *candidates = window.races().size();
    *windowDrops = window.windowDrops();
    return sec;
}

} // namespace

int
main(int argc, char **argv)
{
    double scale = argDouble(argc, argv, "scale", 1.0);
    std::string jsonOut = argString(argc, argv, "json-out", "");

    workload::GeneratedApp app =
        workload::generateApp(appSimProfile(scale, 2000));
    const trace::Trace &tr = app.trace;
    std::printf("AppSim (scale %.2f): %s\n\n", scale,
                tr.stats().summary().c_str());

    // Best-of-3 per pass: the guard is a ratio, so timer noise on
    // either side would flake CI.
    double hbSec = 1e9, predictSec = 1e9;
    std::uint64_t candidates = 0, windowDrops = 0;
    for (int rep = 0; rep < 3; ++rep) {
        hbSec = std::min(hbSec, hbPass(tr));
        predictSec = std::min(
            predictSec, predictPass(tr, &candidates, &windowDrops));
    }
    double ratio = hbSec > 0 ? predictSec / hbSec : 1.0;
    std::printf("HB-only pass:        %8.3fs\n", hbSec);
    std::printf("HB + weak clocks:    %8.3fs  (%llu candidate(s), "
                "%llu window drop(s))\n",
                predictSec, (unsigned long long)candidates,
                (unsigned long long)windowDrops);
    std::printf("clock-pass overhead: %7.1f%%  (guard: <25%%)\n",
                (ratio - 1.0) * 100.0);

    // The funnel, end to end, on a small AppSim variant that stays
    // under the default --verify-max-ops cap (reported, not gated).
    workload::GeneratedApp small =
        workload::generateApp(appSimProfile(1.0, 200));
    report::FastTrackChecker checker;
    core::AsyncClockDetector det(small.trace, checker);
    det.runAll();
    auto start = std::chrono::steady_clock::now();
    predict::PredictResult funnel =
        predict::runPrediction(small.trace, checker.races(), {});
    double funnelSec = secondsSince(start);
    std::printf("\nfunnel (small AppSim, %llu ops): %.3fs\n",
                (unsigned long long)small.trace.numOps(), funnelSec);
    std::printf("%s\n", funnel.summary.summary().c_str());
    std::string recall = funnel.summary.recallLine();
    if (!recall.empty())
        std::printf("%s\n", recall.c_str());

    if (!jsonOut.empty()) {
        FILE *f = std::fopen(jsonOut.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n", jsonOut.c_str());
            return 1;
        }
        std::fprintf(
            f,
            "{\n"
            "  \"workload\": \"AppSim\",\n"
            "  \"scale\": %.3f,\n"
            "  \"ops\": %llu,\n"
            "  \"hb_sec\": %.6f,\n"
            "  \"predict_sec\": %.6f,\n"
            "  \"overhead_ratio\": %.4f,\n"
            "  \"guard_ratio\": 1.25,\n"
            "  \"candidates\": %llu,\n"
            "  \"window_drops\": %llu,\n"
            "  \"funnel\": {\n"
            "    \"ops\": %llu,\n"
            "    \"sec\": %.6f,\n"
            "    \"candidates\": %llu,\n"
            "    \"hidden\": %llu,\n"
            "    \"shadowed\": %llu,\n"
            "    \"confirmed\": %llu,\n"
            "    \"infeasible\": %llu,\n"
            "    \"replays\": %llu\n"
            "  }\n"
            "}\n",
            scale, (unsigned long long)tr.numOps(), hbSec, predictSec,
            ratio, (unsigned long long)candidates,
            (unsigned long long)windowDrops,
            (unsigned long long)small.trace.numOps(), funnelSec,
            (unsigned long long)funnel.summary.candidates,
            (unsigned long long)funnel.summary.hidden,
            (unsigned long long)funnel.summary.shadowed,
            (unsigned long long)funnel.summary.confirmed,
            (unsigned long long)funnel.summary.infeasible,
            (unsigned long long)funnel.summary.replays);
        std::fclose(f);
        std::printf("wrote %s\n", jsonOut.c_str());
    }

    if (ratio > 1.25) {
        std::fprintf(stderr,
                     "FAIL: weak-clock pass overhead %.1f%% exceeds "
                     "the 25%% guard\n",
                     (ratio - 1.0) * 100.0);
        return 1;
    }
    std::printf("\nclock-pass overhead within the 25%% guard\n");
    return 0;
}
