/**
 * @file
 * Dense vector clock — the ablation baseline for section 4.2's
 * "Sparse Vectors" claim.
 *
 * A conventional vector clock indexed by chain id. Works fine while
 * chains number in the dozens (conventional multithreaded programs);
 * in an event-driven execution the chain count is unbounded, so the
 * dense form wastes O(#chains) space per clock and O(#chains) time
 * per join regardless of how few entries are nonzero. The paper's
 * answer is the sparse representation (clock/vector_clock.hh,
 * following accordion clocks [7]); `bench_micro_clocks` measures the
 * two against each other across sparsity levels.
 *
 * Interface-compatible with clock::VectorClock for the operations the
 * detectors use, so it can also be dropped into experiments.
 *
 * Lives in bench/ (not src/clock/) because nothing in the library
 * proper uses it: it exists only so the micro-benchmarks and the
 * equivalence tests can measure sparse against it.
 */

#ifndef ASYNCCLOCK_BENCH_DENSE_CLOCK_HH
#define ASYNCCLOCK_BENCH_DENSE_CLOCK_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "clock/vector_clock.hh"

namespace asyncclock::clock {

class DenseClock
{
  public:
    DenseClock() = default;

    Tick
    get(ChainId chain) const
    {
        return chain < ticks_.size() ? ticks_[chain] : 0;
    }

    void
    raise(ChainId chain, Tick tick)
    {
        if (tick == 0)
            return;
        if (ticks_.size() <= chain)
            ticks_.resize(chain + 1, 0);
        if (ticks_[chain] < tick)
            ticks_[chain] = tick;
    }

    bool
    knows(const Epoch &e) const
    {
        return e.tick == 0 || get(e.chain) >= e.tick;
    }

    void
    joinWith(const DenseClock &other)
    {
        if (ticks_.size() < other.ticks_.size())
            ticks_.resize(other.ticks_.size(), 0);
        for (std::size_t i = 0; i < other.ticks_.size(); ++i)
            ticks_[i] = std::max(ticks_[i], other.ticks_[i]);
    }

    bool
    leq(const DenseClock &other) const
    {
        for (std::size_t i = 0; i < ticks_.size(); ++i) {
            if (ticks_[i] > other.get(static_cast<ChainId>(i)))
                return false;
        }
        return true;
    }

    std::uint32_t
    size() const
    {
        std::uint32_t n = 0;
        for (Tick t : ticks_)
            n += t != 0;
        return n;
    }

    std::uint64_t
    byteSize() const
    {
        return ticks_.capacity() * sizeof(Tick);
    }

    /** Convert to the sparse representation (for tests). */
    VectorClock
    toSparse() const
    {
        VectorClock vc;
        for (std::size_t i = 0; i < ticks_.size(); ++i)
            vc.raise(static_cast<ChainId>(i), ticks_[i]);
        return vc;
    }

  private:
    std::vector<Tick> ticks_;
};

} // namespace asyncclock::clock

#endif // ASYNCCLOCK_BENCH_DENSE_CLOCK_HH
