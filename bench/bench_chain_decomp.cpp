/**
 * @file
 * Section 7.6 / 4.2 reproduction: FIFO chain decomposition versus the
 * online greedy decomposition [17], plus the FIFO-level event mix.
 *
 * The paper reports ~5% memory and ~10% time improvement from FIFO
 * chain decomposition (chains found by table lookup instead of
 * predecessor scans) and that about 54% / 4.8% / 1.7% of events are
 * level-1/2/3 FIFO events.
 *
 * Usage: bench_chain_decomp [--scale=0.02]
 */

#include <cstdio>

#include "bench_util.hh"
#include "support/format.hh"
#include "workload/workload.hh"

using namespace asyncclock;
using namespace asyncclock::bench;

int
main(int argc, char **argv)
{
    double scale = argDouble(argc, argv, "scale", 0.02);
    std::printf("FIFO vs greedy chain decomposition (scale %.3f)\n\n",
                scale);
    std::printf("%-15s | %9s %9s %7s | %9s %9s %7s | %6s %6s\n",
                "Application", "fifo-t", "greedy-t", "dT%", "fifo-m",
                "greedy-m", "dM%", "chainsF", "chainsG");

    double sumT = 0, sumM = 0;
    std::uint64_t lvl[4] = {0, 0, 0, 0};
    unsigned count = 0;
    for (const auto &profile : workload::table2Profiles(scale)) {
        workload::GeneratedApp app = workload::generateApp(profile);

        core::DetectorConfig fifo;  // default: ChainMode::Fifo
        core::DetectorConfig greedy;
        greedy.chainMode = core::ChainMode::Greedy;

        // Time both twice and keep the faster run to damp noise.
        RunResult f1 = runAsyncClock(app.trace, fifo);
        RunResult f2 = runAsyncClock(app.trace, fifo);
        RunResult g1 = runAsyncClock(app.trace, greedy);
        RunResult g2 = runAsyncClock(app.trace, greedy);
        double ft = std::min(f1.seconds, f2.seconds);
        double gt = std::min(g1.seconds, g2.seconds);
        std::uint64_t fm = f1.peakBytes, gm = g1.peakBytes;

        double dT = 100.0 * (gt - ft) / std::max(gt, 1e-9);
        double dM = 100.0 * (double(gm) - double(fm)) /
                    double(std::max<std::uint64_t>(gm, 1));
        sumT += dT;
        sumM += dM;
        ++count;
        for (int l = 0; l < 4; ++l)
            lvl[l] += f1.acCounters.fifoLevel[l];

        std::printf("%-15s | %8.3fs %8.3fs %6.1f%% | %9s %9s %6.1f%% "
                    "| %6u %6u\n",
                    profile.name.c_str(), ft, gt, dT,
                    humanBytes(fm).c_str(), humanBytes(gm).c_str(),
                    dM, f1.numChains, g1.numChains);
    }
    std::uint64_t total = lvl[0] + lvl[1] + lvl[2] + lvl[3];
    std::printf("\nAverage improvement from FIFO decomposition: "
                "time %.1f%%, memory %.1f%%\n",
                sumT / count, sumM / count);
    std::printf("FIFO level mix across the suite (of %llu events): "
                "level-1 %.1f%%, level-2 %.1f%%,\nlevel-3 %.1f%%, "
                "greedy-placed %.1f%%\n",
                (unsigned long long)total,
                100.0 * double(lvl[1]) / double(total),
                100.0 * double(lvl[2]) / double(total),
                100.0 * double(lvl[3]) / double(total),
                100.0 * double(lvl[0]) / double(total));
    std::printf("\nPaper: ~10%% time and ~5%% memory improvement; "
                "54%% / 4.8%% / 1.7%% of events\nare level-1/2/3 "
                "FIFO events (section 4.2).\n");
    return 0;
}
