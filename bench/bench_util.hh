/**
 * @file
 * Shared helpers for the table/figure benchmark harnesses: wall-clock
 * timing of a detector pass with periodic memory polling.
 */

#ifndef ASYNCCLOCK_BENCH_BENCH_UTIL_HH
#define ASYNCCLOCK_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "core/detector.hh"
#include "graph/eventracer.hh"
#include "report/fasttrack.hh"
#include "report/races.hh"
#include "trace/trace.hh"

namespace asyncclock::bench {

/** Result of one measured detector pass. */
struct RunResult
{
    double seconds = 0;
    std::uint64_t peakBytes = 0;
    std::uint64_t ops = 0;
    report::ReportSummary report;
    core::DetectorCounters acCounters;     ///< AsyncClock runs only
    std::uint32_t numChains = 0;           ///< AsyncClock runs only
    graph::GraphCounters erCounters;       ///< EventRacer runs only
};

/** Run AsyncClock on @p tr with @p cfg; measures time and peak
 * metadata bytes, and post-processes races through the filters. */
inline RunResult
runAsyncClock(const trace::Trace &tr, core::DetectorConfig cfg = {},
              report::FilterConfig filters = {})
{
    report::FastTrackChecker checker;
    core::AsyncClockDetector det(tr, checker, cfg);
    MemStats mem;
    auto start = std::chrono::steady_clock::now();
    det.runAll(&mem, 4096);
    RunResult out;
    out.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    out.peakBytes = mem.peakTotal();
    out.ops = det.opsProcessed();
    out.acCounters = det.counters();
    out.numChains = det.numChains();
    out.report = report::RaceAnalyzer(tr).analyze(checker.races(),
                                                  filters);
    return out;
}

/** Run the EventRacer-style baseline the same way. */
inline RunResult
runEventRacer(const trace::Trace &tr,
              graph::EventRacerConfig cfg = {},
              report::FilterConfig filters = {})
{
    report::FastTrackChecker checker;
    graph::EventRacerDetector det(tr, checker, cfg);
    MemStats mem;
    auto start = std::chrono::steady_clock::now();
    det.runAll(&mem, 4096);
    RunResult out;
    out.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    out.peakBytes = mem.peakTotal();
    out.ops = det.opsProcessed();
    out.erCounters = det.counters();
    out.report = report::RaceAnalyzer(tr).analyze(checker.races(),
                                                  filters);
    return out;
}

/** Parse a `--name=value` style double argument. */
inline double
argDouble(int argc, char **argv, const std::string &name, double dflt)
{
    std::string prefix = "--" + name + "=";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind(prefix, 0) == 0)
            return std::strtod(arg.c_str() + prefix.size(), nullptr);
    }
    return dflt;
}

/** Parse a `--name=value` style string argument. */
inline std::string
argString(int argc, char **argv, const std::string &name,
          const std::string &dflt)
{
    std::string prefix = "--" + name + "=";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind(prefix, 0) == 0)
            return arg.substr(prefix.size());
    }
    return dflt;
}

} // namespace asyncclock::bench

#endif // ASYNCCLOCK_BENCH_BENCH_UTIL_HH
