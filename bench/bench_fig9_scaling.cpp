/**
 * @file
 * Fig 9a reproduction: scalability of EventRacer versus AsyncClock as
 * the number of looper events grows.
 *
 * For five applications (the paper uses AnyMemo, ConnectBot, Firefox,
 * AardDict, BarcodeScanner — BarcodeScanner exhibiting the Fig 9b
 * input-chain pattern, generated explicitly here) the harness sweeps
 * the trace length and reports, per point:
 *   - average analysis time *per event* for EventRacer and for three
 *     AsyncClock configurations: no reclaiming, heirless reclaiming
 *     (refcount + multi-path), and heirless + 2-minute time window;
 *   - total metadata memory for the same four configurations.
 *
 * Shape to check against the paper: EventRacer's per-event time grows
 * with trace length (super-linear total) and its memory grows without
 * bound; AsyncClock's per-event time stays flat; without reclaiming
 * its memory grows, with reclaiming it drops, and with the window it
 * plateaus.
 *
 * Usage: bench_fig9_scaling [--points=4] [--base=400]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "support/format.hh"
#include "workload/workload.hh"

using namespace asyncclock;
using namespace asyncclock::bench;

namespace {

trace::Trace
traceFor(const std::string &app, unsigned looperEvents)
{
    if (app == "BarcodeScanner") {
        // Fig 9b: input-event chains posting AtTime decode events.
        return workload::barcodePattern(looperEvents / 2);
    }
    workload::AppProfile p = workload::profileByName(app, 1.0);
    p.looperEvents = looperEvents;
    p.binderEvents = std::max(5u, looperEvents / 20);
    // Fixed event rate: longer traces span more window lengths, as
    // in the paper (x-axis of Fig 9a is trace length at the apps'
    // natural rates).
    p.spanMs = looperEvents * 150ull;
    return workload::generateApp(p).trace;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned points =
        static_cast<unsigned>(argDouble(argc, argv, "points", 5));
    unsigned base =
        static_cast<unsigned>(argDouble(argc, argv, "base", 1000));

    const char *apps[] = {"AnyMemo", "ConnectBot", "Firefox",
                          "AardDict", "BarcodeScanner"};

    core::DetectorConfig noReclaim;
    noReclaim.windowMs = 0;
    noReclaim.reclaimHeirless = false;
    noReclaim.multiPathReduction = false;
    core::DetectorConfig heirless;
    heirless.windowMs = 0;
    core::DetectorConfig windowed;  // defaults: 2-min window

    std::printf("Fig 9a reproduction: us/event (top) and total "
                "metadata memory (bottom)\nvs number of looper "
                "events.\n");
    for (const char *app : apps) {
        std::printf("\n== %s ==\n", app);
        std::printf("%8s | %10s %10s %10s %10s | %9s %9s %9s %9s\n",
                    "events", "ER us/ev", "AC- us/ev", "ACh us/ev",
                    "ACw us/ev", "ER mem", "AC- mem", "ACh mem",
                    "ACw mem");
        for (unsigned i = 1; i <= points; ++i) {
            unsigned n = base * i;
            trace::Trace tr = traceFor(app, n);
            auto stats = tr.stats();
            std::uint64_t events =
                stats.looperEvents + stats.binderEvents;

            RunResult er = runEventRacer(tr);
            RunResult acNo = runAsyncClock(tr, noReclaim);
            RunResult acHeir = runAsyncClock(tr, heirless);
            RunResult acWin = runAsyncClock(tr, windowed);

            auto perEvent = [&](const RunResult &r) {
                return 1e6 * r.seconds / double(std::max<std::uint64_t>(
                                             1, events));
            };
            std::printf(
                "%8llu | %10.2f %10.2f %10.2f %10.2f | %9s %9s %9s "
                "%9s\n",
                (unsigned long long)events, perEvent(er),
                perEvent(acNo), perEvent(acHeir), perEvent(acWin),
                humanBytes(er.peakBytes).c_str(),
                humanBytes(acNo.peakBytes).c_str(),
                humanBytes(acHeir.peakBytes).c_str(),
                humanBytes(acWin.peakBytes).c_str());
        }
    }
    std::printf("\nExpected shape (paper Fig 9a): the ER us/event "
                "column grows with the\ntrace; the AC columns stay "
                "flat. ER memory grows linearly; AC- grows,\nACh "
                "reclaims a large fraction, ACw plateaus.\n");
    return 0;
}
