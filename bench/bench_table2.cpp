/**
 * @file
 * Table 2 reproduction: the 20-app suite, AsyncClock (2-minute
 * window, FIFO chain decomposition) versus the EventRacer-style
 * baseline on identical traces.
 *
 * Paper columns reproduced: trace statistics (sync ops, threads,
 * looper/binder events), analysis time and memory for AsyncClock, and
 * the per-app speedup / memory saved versus EventRacer, plus the
 * average row. Absolute numbers differ from the paper (simulated
 * substrate, scaled event counts); the claims to check are the
 * *shape*: every app >= ~2x speedup, large memory savings, averages
 * in the several-x / >80% region (paper: 8x, 87%).
 *
 * Usage: bench_table2 [--scale=0.02]
 *   scale multiplies the paper's per-app event counts.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "support/format.hh"
#include "workload/workload.hh"

using namespace asyncclock;
using namespace asyncclock::bench;

int
main(int argc, char **argv)
{
    double scale = argDouble(argc, argv, "scale", 0.1);
    std::printf("Table 2 reproduction (scale %.3f of the paper's "
                "event counts)\n\n",
                scale);
    std::printf("%-15s %8s %7s %12s %8s %8s | %9s %9s | %8s %9s\n",
                "Application", "Ops", "Sync", "Thr(w/l/b)", "LooperEv",
                "BinderEv", "AC-time", "AC-mem", "Speedup",
                "MemSaved");

    double sumSpeedup = 0, sumSaved = 0, sumAcTime = 0, sumAcMem = 0;
    unsigned count = 0;
    for (const auto &profile : workload::table2Profiles(scale)) {
        workload::GeneratedApp app = workload::generateApp(profile);
        auto stats = app.trace.stats();

        RunResult ac = runAsyncClock(app.trace);
        RunResult er = runEventRacer(app.trace);

        double speedup = er.seconds / std::max(ac.seconds, 1e-9);
        double saved = er.peakBytes == 0
                           ? 0.0
                           : 100.0 * (1.0 - double(ac.peakBytes) /
                                                double(er.peakBytes));
        std::printf(
            "%-15s %8llu %7llu %5llu/%llu/%-4llu %8llu %8llu | "
            "%8.3fs %9s | %7.2fx %8.1f%%\n",
            profile.name.c_str(), (unsigned long long)stats.ops,
            (unsigned long long)stats.syncOps,
            (unsigned long long)stats.workerThreads,
            (unsigned long long)stats.looperThreads,
            (unsigned long long)stats.binderThreads,
            (unsigned long long)stats.looperEvents,
            (unsigned long long)stats.binderEvents, ac.seconds,
            humanBytes(ac.peakBytes).c_str(), speedup, saved);
        sumSpeedup += speedup;
        sumSaved += saved;
        sumAcTime += ac.seconds;
        sumAcMem += double(ac.peakBytes);
        ++count;
    }
    std::printf("%-15s %62s | %8.3fs %9s | %7.2fx %8.1f%%\n",
                "Average", "", sumAcTime / count,
                humanBytes(std::uint64_t(sumAcMem / count)).c_str(),
                sumSpeedup / count, sumSaved / count);
    std::printf("\nPaper (full-scale testbed): average speedup 7.99x, "
                "memory saved 87%%,\nminimum speedup 2.21x; speedups "
                "grow with trace length (section 7.3).\n");
    return 0;
}
