/**
 * @file
 * Streaming-pipeline benchmark: detector throughput and trace-container
 * footprint across the three TraceSource kinds, plus sharded race
 * checking.
 *
 * For each selected Table 2 app the harness encodes the generated
 * trace once and then runs AsyncClock four ways — materialized,
 * streaming text, streaming binary, and streaming binary with the race
 * checks fanned out to parallel FastTrack shards — reporting ops/sec,
 * the peak bytes held by the trace container itself (the op vector for
 * the materialized source, fixed decoder state for the streaming
 * ones), and the race count as a cross-check.
 *
 * Shape to check: the streaming sources' container footprint is O(1)
 * in the op count (a few hundred bytes vs megabytes materialized) at a
 * modest throughput cost, the binary decoder outpaces the text parser,
 * and every mode reports the identical number of races.
 *
 * Usage: bench_streaming [--scale=0.05]
 */

#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>

#include "bench_util.hh"
#include "report/sharded.hh"
#include "support/format.hh"
#include "trace/trace_io.hh"
#include "workload/workload.hh"

using namespace asyncclock;
using namespace asyncclock::bench;

namespace {

struct ModeResult
{
    double opsPerSec = 0;
    std::uint64_t peakContainer = 0;
    std::size_t races = 0;
};

/** One timed AsyncClock pass over @p src; @p shards == 0 checks
 * sequentially. Polls the source's container footprint as it runs. */
ModeResult
runMode(trace::TraceSource &src, unsigned shards)
{
    std::unique_ptr<report::AccessChecker> checker;
    if (shards > 0) {
        report::ShardedConfig cfg;
        cfg.shards = shards;
        checker = std::make_unique<report::ShardedChecker>(cfg);
    } else {
        checker = std::make_unique<report::FastTrackChecker>();
    }
    core::AsyncClockDetector det(src, *checker);
    ModeResult out;
    std::uint64_t n = 0;
    auto start = std::chrono::steady_clock::now();
    while (det.processNext()) {
        if ((++n & 255) == 0)
            out.peakContainer =
                std::max(out.peakContainer, src.containerBytes());
    }
    // Drain inside the timed region: the sharded drain is part of the
    // cost of getting an answer.
    out.races = checker->races().size();
    out.opsPerSec =
        double(n) / std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    out.peakContainer =
        std::max(out.peakContainer, src.containerBytes());
    if (!src.ok())
        fatal("source failed: " + src.error());
    return out;
}

void
printRow(const char *mode, const ModeResult &r)
{
    std::printf("  %-24s %10.0f ops/s   container %10s   races %zu\n",
                mode, r.opsPerSec,
                humanBytes(r.peakContainer).c_str(), r.races);
}

} // namespace

int
main(int argc, char **argv)
{
    double scale = argDouble(argc, argv, "scale", 0.05);
    const char *apps[] = {"AnyMemo", "Firefox", "VLCPlayer"};

    for (const char *name : apps) {
        workload::AppProfile profile =
            workload::profileByName(name, scale);
        workload::GeneratedApp app = workload::generateApp(profile);
        std::string text = trace::writeTraceToString(app.trace);
        std::string bin = trace::writeBinaryTraceToString(app.trace);
        std::printf("== %s: %u ops (text %s, binary %s) ==\n", name,
                    app.trace.numOps(),
                    humanBytes(text.size()).c_str(),
                    humanBytes(bin.size()).c_str());

        {
            trace::MaterializedSource src(app.trace);
            printRow("materialized", runMode(src, 0));
        }
        {
            std::istringstream in(text);
            trace::StreamingTextSource src(in);
            printRow("streaming-text", runMode(src, 0));
        }
        {
            std::istringstream in(bin);
            trace::StreamingBinarySource src(in);
            printRow("streaming-binary", runMode(src, 0));
        }
        for (unsigned shards : {1u, 4u}) {
            std::istringstream in(bin);
            trace::StreamingBinarySource src(in);
            printRow(strf("streaming + %u shard%s", shards,
                          shards == 1 ? "" : "s")
                         .c_str(),
                     runMode(src, shards));
        }
        std::printf("\n");
    }
    return 0;
}
