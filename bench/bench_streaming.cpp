/**
 * @file
 * Streaming-pipeline benchmark: detector throughput and trace-container
 * footprint across the three TraceSource kinds, plus sharded race
 * checking.
 *
 * For each selected Table 2 app the harness encodes the generated
 * trace once and then runs AsyncClock four ways — materialized,
 * streaming text, streaming binary, and streaming binary with the race
 * checks fanned out to parallel FastTrack shards — reporting ops/sec,
 * the peak bytes held by the trace container itself (the op vector for
 * the materialized source, fixed decoder state for the streaming
 * ones), and the race count as a cross-check.
 *
 * Shape to check: the streaming sources' container footprint is O(1)
 * in the op count (a few hundred bytes vs megabytes materialized) at a
 * modest throughput cost, the binary decoder outpaces the text parser,
 * and every mode reports the identical number of races.
 *
 * With --metrics-out=PATH every mode run additionally attaches a
 * MetricsRegistry (detector counters, shard queue stats, per-category
 * memory) and the harness writes one JSON document with the per-run
 * snapshots. The default run attaches nothing — the observability
 * hooks must stay invisible in the numbers this bench exists to
 * measure.
 *
 * Usage: bench_streaming [--scale=0.05] [--metrics-out=PATH]
 */

#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "obs/obs.hh"
#include "report/sharded.hh"
#include "support/format.hh"
#include "support/json.hh"
#include "trace/trace_io.hh"
#include "workload/workload.hh"

using namespace asyncclock;
using namespace asyncclock::bench;

namespace {

struct ModeResult
{
    double opsPerSec = 0;
    std::uint64_t peakContainer = 0;
    std::size_t races = 0;
    std::string metricsJson;  ///< only with --metrics-out
};

/** One timed AsyncClock pass over @p src; @p shards == 0 checks
 * sequentially. Polls the source's container footprint as it runs.
 * @p withMetrics attaches a registry and snapshots it into the
 * result (adds measurable work — off for the headline numbers). */
ModeResult
runMode(trace::TraceSource &src, unsigned shards,
        bool withMetrics = false)
{
    obs::MetricsRegistry registry;
    obs::ObsContext octx;
    if (withMetrics)
        octx.metrics = &registry;
    std::unique_ptr<report::AccessChecker> checker;
    if (shards > 0) {
        report::ShardedConfig cfg;
        cfg.shards = shards;
        cfg.obs = octx;
        checker = std::make_unique<report::ShardedChecker>(cfg);
    } else {
        checker = std::make_unique<report::FastTrackChecker>();
    }
    core::AsyncClockDetector det(src, *checker);
    det.attachObs(octx);
    ModeResult out;
    std::uint64_t n = 0;
    auto start = std::chrono::steady_clock::now();
    while (det.processNext()) {
        if ((++n & 255) == 0)
            out.peakContainer =
                std::max(out.peakContainer, src.containerBytes());
    }
    // Drain inside the timed region: the sharded drain is part of the
    // cost of getting an answer.
    out.races = checker->races().size();
    out.opsPerSec =
        double(n) / std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    out.peakContainer =
        std::max(out.peakContainer, src.containerBytes());
    if (!src.ok())
        fatal("source failed: " + src.error());
    // Snapshot while the detector and checker (the callback metrics'
    // producers) are still alive.
    if (withMetrics)
        out.metricsJson = registry.snapshot().toJson();
    return out;
}

void
printRow(const char *mode, const ModeResult &r)
{
    std::printf("  %-24s %10.0f ops/s   container %10s   races %zu\n",
                mode, r.opsPerSec,
                humanBytes(r.peakContainer).c_str(), r.races);
}

} // namespace

int
main(int argc, char **argv)
{
    double scale = argDouble(argc, argv, "scale", 0.05);
    std::string metricsOut =
        argString(argc, argv, "metrics-out", "");
    bool withMetrics = !metricsOut.empty();
    const char *apps[] = {"AnyMemo", "Firefox", "VLCPlayer"};

    // (app, mode, per-run metrics snapshot JSON)
    std::vector<std::pair<std::string, std::string>> snapshots;
    auto record = [&](const std::string &app, const char *mode,
                      const ModeResult &r) {
        printRow(mode, r);
        if (withMetrics)
            snapshots.emplace_back(app + "/" + mode, r.metricsJson);
    };

    for (const char *name : apps) {
        workload::AppProfile profile =
            workload::profileByName(name, scale);
        workload::GeneratedApp app = workload::generateApp(profile);
        std::string text = trace::writeTraceToString(app.trace);
        std::string bin = trace::writeBinaryTraceToString(app.trace);
        std::printf("== %s: %u ops (text %s, binary %s) ==\n", name,
                    app.trace.numOps(),
                    humanBytes(text.size()).c_str(),
                    humanBytes(bin.size()).c_str());

        {
            trace::MaterializedSource src(app.trace);
            record(name, "materialized", runMode(src, 0, withMetrics));
        }
        {
            std::istringstream in(text);
            trace::StreamingTextSource src(in);
            record(name, "streaming-text",
                   runMode(src, 0, withMetrics));
        }
        {
            std::istringstream in(bin);
            trace::StreamingBinarySource src(in);
            record(name, "streaming-binary",
                   runMode(src, 0, withMetrics));
        }
        for (unsigned shards : {1u, 4u}) {
            std::istringstream in(bin);
            trace::StreamingBinarySource src(in);
            record(name,
                   strf("streaming + %u shard%s", shards,
                        shards == 1 ? "" : "s")
                       .c_str(),
                   runMode(src, shards, withMetrics));
        }
        std::printf("\n");
    }

    if (withMetrics) {
        JsonWriter w;
        w.beginObject();
        w.field("schema",
                std::string("asyncclock-bench-streaming-v1"));
        w.key("runs").beginObject();
        for (const auto &[run, json] : snapshots)
            w.key(run).raw(json);
        w.endObject().endObject();
        std::FILE *f = std::fopen(metricsOut.c_str(), "wb");
        if (!f)
            fatal("cannot open " + metricsOut + " for writing");
        if (std::fwrite(w.str().data(), 1, w.str().size(), f) !=
                w.str().size() ||
            std::fclose(f) != 0)
            fatal("short write to " + metricsOut);
        std::printf("wrote per-run metrics to %s\n",
                    metricsOut.c_str());
    }
    return 0;
}
