/**
 * @file
 * Table 3 reproduction: user-induced race groups reported in 8 apps,
 * split into All / Filtered (commutativity whitelist) / Harmful /
 * Harmless Type I / Type II / Other, scored against the workload
 * generator's planted ground truth.
 *
 * The paper's counts come from real apps plus manual triage; here the
 * ground truth is explicit, so the value of this table is checking
 * the *pipeline*: framework-internal races never reach the report,
 * commutative library races are filtered, every planted harmful race
 * is reported and classified harmful, and the report contains nothing
 * that was not planted.
 *
 * Usage: bench_table3_races [--scale=0.02]
 */

#include <cstdio>

#include "bench_util.hh"
#include "workload/workload.hh"

using namespace asyncclock;
using namespace asyncclock::bench;

int
main(int argc, char **argv)
{
    double scale = argDouble(argc, argv, "scale", 0.02);
    const char *apps[] = {"AnyMemo",  "BarcodeScanner", "ConnectBot",
                          "FBReader", "Firefox",        "OIFileManager",
                          "Tomdroid", "VLCPlayer"};

    std::printf("Table 3 reproduction (scale %.3f)\n\n", scale);
    std::printf("%-15s | %5s %8s | %7s %6s %7s %6s | %s\n",
                "Application", "All", "Filtered", "Harmful", "TypeI",
                "TypeII", "Other", "ground truth check");

    std::uint64_t sumAll = 0, sumFiltered = 0, sumHarmful = 0;
    bool allMatch = true;
    for (const char *name : apps) {
        workload::AppProfile p = workload::profileByName(name, scale);
        // Vary the planted mix per app (deterministic in the name).
        unsigned h = 2 + (p.seed % 4);
        p.seededHarmful = h;
        p.seededTypeI = 1 + (p.seed % 3);
        p.seededTypeII = 1 + (p.seed % 2);
        p.seededCommutative = 2 + (p.seed % 3);
        workload::GeneratedApp app = workload::generateApp(p);

        // Exact configuration (no window): Table 3 checks the
        // reporting pipeline; window recall is Fig 10's experiment.
        core::DetectorConfig cfg;
        cfg.windowMs = 0;
        RunResult r = runAsyncClock(app.trace, cfg);
        const auto &s = r.report;
        bool match = s.harmful == app.truth.harmful &&
                     s.typeI == app.truth.typeI &&
                     s.typeII == app.truth.typeII &&
                     s.filteredGroups == app.truth.commutative &&
                     s.otherHarmless == 0;
        allMatch = allMatch && match;
        std::printf("%-15s | %5llu %8llu | %7llu %6llu %7llu %6llu | "
                    "%s\n",
                    name, (unsigned long long)s.allGroups,
                    (unsigned long long)s.filteredGroups,
                    (unsigned long long)s.harmful,
                    (unsigned long long)s.typeI,
                    (unsigned long long)s.typeII,
                    (unsigned long long)s.otherHarmless,
                    match ? "exact" : "MISMATCH");
        sumAll += s.allGroups;
        sumFiltered += s.filteredGroups;
        sumHarmful += s.harmful;
    }
    std::printf("\nTotals: %llu user-induced groups, %llu filtered "
                "by the commutativity\nwhitelist, %llu harmful "
                "reported. Ground truth %s.\n",
                (unsigned long long)sumAll,
                (unsigned long long)sumFiltered,
                (unsigned long long)sumHarmful,
                allMatch ? "reproduced exactly in every app"
                         : "NOT fully reproduced");
    std::printf("\nPaper (real apps, manual triage): 1437 groups, "
                "1106 filtered, 147 harmful\nraces across these 8 "
                "apps; 44%% of post-filter groups were harmful.\n");
    return allMatch ? 0 : 1;
}
