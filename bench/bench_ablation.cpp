/**
 * @file
 * Ablations of the detector's own design choices (the companion to
 * DESIGN.md's decisions, beyond what the paper tables show):
 *
 *  1. Early stopping (section 5.3 cases 1+2) on/off: without it the
 *     async-before walks on the Fig 9b AtTime-chain pattern
 *     degenerate to the same super-linear behaviour as EventRacer's
 *     graph traversal.
 *  2. Reclamation ladder on an app profile: no reclaiming ->
 *     refcount+multi-path -> +2-minute window; live event metadata
 *     and peak bytes step down while the race set is untouched.
 *  3. Chain decomposition: greedy vs FIFO chain counts.
 *
 * Usage: bench_ablation [--events=3000]
 */

#include <cstdio>

#include "bench_util.hh"
#include "support/format.hh"
#include "workload/workload.hh"

using namespace asyncclock;
using namespace asyncclock::bench;

int
main(int argc, char **argv)
{
    unsigned events =
        static_cast<unsigned>(argDouble(argc, argv, "events", 3000));

    // ----- 1. early stopping ----------------------------------------
    std::printf("== Ablation 1: async-before early stopping "
                "(Fig 9b pattern, %u events) ==\n",
                events);
    std::printf("%8s | %14s %12s | %14s %12s\n", "events", "on:walks",
                "on:time", "off:walks", "off:time");
    for (unsigned n = events / 3; n <= events; n += events / 3) {
        trace::Trace tr = workload::barcodePattern(n / 2);
        core::DetectorConfig on;
        on.windowMs = 0;
        core::DetectorConfig off = on;
        off.earlyStopping = false;
        RunResult rOn = runAsyncClock(tr, on);
        RunResult rOff = runAsyncClock(tr, off);
        std::printf("%8u | %14llu %11.3fs | %14llu %11.3fs\n", n,
                    (unsigned long long)rOn.acCounters.walkSteps,
                    rOn.seconds,
                    (unsigned long long)rOff.acCounters.walkSteps,
                    rOff.seconds);
        if (rOn.report.allGroups != rOff.report.allGroups) {
            std::printf("  RACE-SET MISMATCH (bug!)\n");
            return 1;
        }
    }
    std::printf("Early stopping keeps walks linear; disabling it "
                "makes them quadratic\n(the EventRacer failure mode, "
                "section 7.3) without changing any race.\n\n");

    // ----- 2. reclamation ladder -------------------------------------
    std::printf("== Ablation 2: reclamation ladder (ConnectBot "
                "profile) ==\n");
    workload::AppProfile p =
        workload::profileByName("ConnectBot", 0.05);
    workload::GeneratedApp app = workload::generateApp(p);

    core::DetectorConfig none;
    none.windowMs = 0;
    none.reclaimHeirless = false;
    none.multiPathReduction = false;
    core::DetectorConfig heirless;
    heirless.windowMs = 0;
    core::DetectorConfig window;  // defaults

    const char *names[] = {"no reclaiming", "heirless reclaim",
                           "+2min window"};
    const core::DetectorConfig *cfgs[] = {&none, &heirless, &window};
    std::uint64_t groups[3] = {};
    for (int i = 0; i < 3; ++i) {
        RunResult r = runAsyncClock(app.trace, *cfgs[i]);
        groups[i] = r.report.allGroups;
        std::printf("  %-18s live-events=%6llu peak=%9s "
                    "multi-path=%llu window-aged=%llu\n",
                    names[i],
                    (unsigned long long)r.acCounters.eventsLive,
                    humanBytes(r.peakBytes).c_str(),
                    (unsigned long long)
                        r.acCounters.reclaimedMultiPath,
                    (unsigned long long)
                        r.acCounters.invalidatedByWindow);
    }
    std::printf("  race groups: exact configs equal (%llu == %llu); "
                "window may only shrink (%llu <= %llu)\n\n",
                (unsigned long long)groups[0],
                (unsigned long long)groups[1],
                (unsigned long long)groups[2],
                (unsigned long long)groups[1]);

    // ----- 3. chain decomposition ------------------------------------
    std::printf("== Ablation 3: chain decomposition ==\n");
    core::DetectorConfig fifo;
    fifo.windowMs = 0;
    core::DetectorConfig greedy = fifo;
    greedy.chainMode = core::ChainMode::Greedy;
    RunResult rf = runAsyncClock(app.trace, fifo);
    RunResult rg = runAsyncClock(app.trace, greedy);
    std::printf("  fifo: %u chains (levels %llu/%llu/%llu/%llu "
                "greedy/l1/l2/l3), greedy: %u chains\n",
                rf.numChains,
                (unsigned long long)rf.acCounters.fifoLevel[0],
                (unsigned long long)rf.acCounters.fifoLevel[1],
                (unsigned long long)rf.acCounters.fifoLevel[2],
                (unsigned long long)rf.acCounters.fifoLevel[3],
                rg.numChains);
    return groups[0] == groups[1] ? 0 : 1;
}
