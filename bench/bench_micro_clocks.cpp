/**
 * @file
 * Micro-benchmarks (google-benchmark) for the clock substrate: the
 * costs the paper's design decisions target — sparse vector-clock
 * joins and queries, AsyncClock joins (the "integer comparison per
 * chain" of section 3.3), identity reduction, FlatMap operations, and
 * InvPtr reference traffic. Ablation companion to the sparse-vector
 * claim of section 4.2.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "dense_clock.hh"
#include "clock/vector_clock.hh"
#include "core/meta.hh"
#include "support/flat_map.hh"
#include "support/rng.hh"

using namespace asyncclock;
using clock_ = asyncclock::clock::VectorClock;

namespace {

clock_
makeClock(unsigned entries, std::uint64_t seed)
{
    Rng rng(seed);
    clock_ vc;
    for (unsigned i = 0; i < entries; ++i) {
        vc.raise(static_cast<clock::ChainId>(rng.below(entries * 4)),
                 static_cast<clock::Tick>(rng.range(1, 1000)));
    }
    return vc;
}

void
BM_VectorClockJoin(benchmark::State &state)
{
    unsigned n = static_cast<unsigned>(state.range(0));
    clock_ a = makeClock(n, 1);
    clock_ b = makeClock(n, 2);
    for (auto _ : state) {
        clock_ c = a;
        c.joinWith(b);
        benchmark::DoNotOptimize(c.size());
    }
}
BENCHMARK(BM_VectorClockJoin)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void
BM_VectorClockKnows(benchmark::State &state)
{
    unsigned n = static_cast<unsigned>(state.range(0));
    clock_ vc = makeClock(n, 3);
    Rng rng(4);
    for (auto _ : state) {
        clock::Epoch e{static_cast<clock::ChainId>(rng.below(n * 4)),
                       static_cast<clock::Tick>(rng.range(1, 1000))};
        benchmark::DoNotOptimize(vc.knows(e));
    }
}
BENCHMARK(BM_VectorClockKnows)->Arg(16)->Arg(256);

void
BM_VectorClockCopy(benchmark::State &state)
{
    clock_ vc = makeClock(static_cast<unsigned>(state.range(0)), 5);
    for (auto _ : state) {
        clock_ copy = vc;
        benchmark::DoNotOptimize(copy.size());
    }
}
BENCHMARK(BM_VectorClockCopy)->Arg(16)->Arg(256);

/**
 * The section 4.2 ablation: joining clocks with a fixed number of
 * nonzero entries spread over a growing chain-id range. The sparse
 * clock's cost tracks the entry count; the dense clock's cost (and
 * footprint) tracks the id range — exactly the gap the paper's sparse
 * representation closes for event-driven executions with unbounded
 * chains.
 */
void
BM_SparseJoinFixedEntries(benchmark::State &state)
{
    unsigned range = static_cast<unsigned>(state.range(0));
    Rng rng(8);
    clock_ a, b;
    for (unsigned i = 0; i < 32; ++i) {
        a.raise(static_cast<clock::ChainId>(rng.below(range)), 5);
        b.raise(static_cast<clock::ChainId>(rng.below(range)), 7);
    }
    for (auto _ : state) {
        clock_ c = a;
        c.joinWith(b);
        benchmark::DoNotOptimize(c.size());
    }
}
BENCHMARK(BM_SparseJoinFixedEntries)
    ->Arg(64)->Arg(1024)->Arg(16384)->Arg(262144);

void
BM_DenseJoinFixedEntries(benchmark::State &state)
{
    unsigned range = static_cast<unsigned>(state.range(0));
    Rng rng(8);
    clock::DenseClock a, b;
    for (unsigned i = 0; i < 32; ++i) {
        a.raise(static_cast<clock::ChainId>(rng.below(range)), 5);
        b.raise(static_cast<clock::ChainId>(rng.below(range)), 7);
    }
    for (auto _ : state) {
        clock::DenseClock c = a;
        c.joinWith(b);
        benchmark::DoNotOptimize(c.size());
    }
}
BENCHMARK(BM_DenseJoinFixedEntries)
    ->Arg(64)->Arg(1024)->Arg(16384)->Arg(262144);

/**
 * Backend comparison on the ownership-disciplined join loop (tick,
 * export, join of exports — the regime the tree backend's pruning
 * targets). Arg 0 selects the backend (clock::Backend value), arg 1
 * the number of chains.
 */
void
BM_BackendDisciplinedJoin(benchmark::State &state)
{
    auto backend = static_cast<clock::Backend>(state.range(0));
    unsigned chains = static_cast<unsigned>(state.range(1));
    std::vector<clock_> owners(chains, clock_(backend));
    std::vector<clock_> exports(chains, clock_(backend));
    std::vector<clock::Tick> ticks(chains, 0);
    Rng rng(11);
    for (unsigned step = 0; step < chains * 8; ++step) {
        unsigned c = static_cast<unsigned>(rng.below(chains));
        owners[c].joinWith(exports[rng.below(chains)]);
        owners[c].tick(c, ++ticks[c]);
        exports[c] = owners[c];
    }
    unsigned i = 0;
    for (auto _ : state) {
        unsigned c = i % chains;
        owners[c].joinWith(exports[(i * 7 + 3) % chains]);
        if ((i & 63u) == 0) {
            owners[c].tick(c, ++ticks[c]);
            exports[c] = owners[c];
        }
        ++i;
        benchmark::DoNotOptimize(owners[c].size());
    }
}
BENCHMARK(BM_BackendDisciplinedJoin)
    ->ArgsProduct({{0, 1, 2, 3}, {16, 64, 256}});

/** Backend comparison for snapshot copies (the detector's export
 * step): COW's refcount bump vs sparse/tree deep copies. */
void
BM_BackendCopy(benchmark::State &state)
{
    auto backend = static_cast<clock::Backend>(state.range(0));
    clock_ vc(backend);
    Rng rng(12);
    for (unsigned i = 0; i < 64; ++i)
        vc.raise(static_cast<clock::ChainId>(rng.below(256)),
                 static_cast<clock::Tick>(rng.range(1, 1000)));
    for (auto _ : state) {
        clock_ copy = vc;
        benchmark::DoNotOptimize(copy.size());
    }
}
BENCHMARK(BM_BackendCopy)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void
BM_AsyncClockJoin(benchmark::State &state)
{
    // AsyncClock join = per-chain integer comparison (section 3.3).
    unsigned n = static_cast<unsigned>(state.range(0));
    core::MetaRegistry reg;
    std::vector<core::EventRef> metas;
    core::AsyncClock a, b;
    Rng rng(6);
    for (unsigned i = 0; i < n; ++i) {
        metas.push_back(core::EventRef::make(reg));
        metas.push_back(core::EventRef::make(reg));
        a.update(i, metas[2 * i],
                 static_cast<clock::Tick>(rng.range(1, 1000)));
        b.update(i, metas[2 * i + 1],
                 static_cast<clock::Tick>(rng.range(1, 1000)));
    }
    for (auto _ : state) {
        core::AsyncClock c = a;
        c.joinWith(b);
        benchmark::DoNotOptimize(c.size());
    }
}
BENCHMARK(BM_AsyncClockJoin)->Arg(4)->Arg(16)->Arg(64);

void
BM_AsyncClockIdentityReduction(benchmark::State &state)
{
    core::MetaRegistry reg;
    auto meta = core::EventRef::make(reg);
    core::AsyncClock ac;
    for (unsigned i = 0; i < 32; ++i)
        ac.update(i, meta, i + 1);
    for (auto _ : state) {
        core::AsyncClock tmp = ac;
        tmp.reduceToIdentity(7, meta, 99);
        benchmark::DoNotOptimize(tmp.size());
    }
}
BENCHMARK(BM_AsyncClockIdentityReduction);

void
BM_FlatMapInsertFind(benchmark::State &state)
{
    Rng rng(7);
    for (auto _ : state) {
        FlatMap<std::uint32_t> m;
        for (int i = 0; i < 64; ++i)
            m[static_cast<std::uint32_t>(rng.below(256))] = 1;
        benchmark::DoNotOptimize(m.find(17));
    }
}
BENCHMARK(BM_FlatMapInsertFind);

void
BM_InvPtrRefTraffic(benchmark::State &state)
{
    core::MetaRegistry reg;
    auto meta = core::EventRef::make(reg);
    for (auto _ : state) {
        core::EventRef copy = meta;
        benchmark::DoNotOptimize(copy.refCount());
    }
}
BENCHMARK(BM_InvPtrRefTraffic);

} // namespace

BENCHMARK_MAIN();
