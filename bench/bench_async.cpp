/**
 * @file
 * Async-model benchmark: DetectorEngine throughput over the
 * coroutine task-graph workloads, per async profile.
 *
 * For each profile (AsyncTree, AsyncPipeline, AsyncFanOut) the
 * harness generates the task-graph trace at the requested scale and
 * runs the AsyncTaskModel end to end, reporting ops/sec, peak
 * detector metadata, task/cancellation counts, and the race count —
 * which must equal the profile's seeded-race count, so the bench
 * doubles as a recall smoke check on sizes the unit tests don't
 * reach.
 *
 * Usage: bench_async [--scale=1.0] [--json-out=PATH]
 *                    [--metrics-out=PATH]
 *
 * --json-out writes a machine-readable summary (CI archives it as
 * BENCH_async.json). --metrics-out attaches a fresh metrics registry
 * to every profile run (the engine's detector.* and model.* series
 * plus the generator's taskgraph.* series) and writes the combined
 * snapshots as one JSON document keyed by profile — the
 * bench_streaming convention.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/engine.hh"
#include "obs/metrics.hh"
#include "support/format.hh"
#include "support/json.hh"
#include "workload/async_workload.hh"

using namespace asyncclock;
using namespace asyncclock::bench;

namespace {

struct ProfileResult
{
    std::string name;
    std::uint64_t ops = 0;
    std::uint64_t tasks = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t seeded = 0;
    std::uint64_t raceGroups = 0;
    double opsPerSec = 0;
    std::uint64_t peakBytes = 0;
    std::string metricsJson;  ///< only with --metrics-out
};

ProfileResult
runProfile(const workload::AsyncProfile &p, double scale,
           bool withMetrics)
{
    workload::AsyncProfile prof = p;
    prof.rootTasks = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(prof.rootTasks * scale + 0.5));
    // One registry per profile run so the series don't mix. It must
    // outlive the engine snapshot below.
    obs::MetricsRegistry registry;
    obs::ObsContext octx;
    if (withMetrics) {
        octx.metrics = &registry;
        prof.obs = octx;
    }
    workload::GeneratedAsyncApp app = workload::generateAsyncApp(prof);

    report::FastTrackChecker checker;
    core::DetectorEngine eng(core::ModelKind::Async, app.trace,
                             checker, {});
    eng.attachObs(octx);
    MemStats mem;
    auto start = std::chrono::steady_clock::now();
    eng.runAll(&mem, 4096);
    double sec = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();

    ProfileResult r;
    r.name = prof.name;
    r.ops = app.trace.numOps();
    r.tasks = app.trace.events().size();
    r.cancelled = app.cancelledTasks;
    r.opsPerSec = sec > 0 ? static_cast<double>(r.ops) / sec : 0;
    r.peakBytes = mem.peakTotal();
    for (trace::VarId v = 0; v < app.trace.vars().size(); ++v)
        if (app.trace.var(v).seedLabel == trace::SeedLabel::Harmful)
            ++r.seeded;
    std::set<trace::VarId> racyVars;
    for (const report::RaceReport &race : checker.races())
        racyVars.insert(race.var);
    r.raceGroups = racyVars.size();
    // Snapshot while the engine (the callback metrics' producer) is
    // still alive.
    if (withMetrics)
        r.metricsJson = registry.snapshot().toJson();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    double scale = argDouble(argc, argv, "scale", 1.0);
    std::string jsonOut = argString(argc, argv, "json-out", "");
    std::string metricsOut = argString(argc, argv, "metrics-out", "");
    bool withMetrics = !metricsOut.empty();

    std::printf("Async task-graph model (scale %.2f)\n\n", scale);
    std::printf("%13s | %8s %7s %9s %12s %10s %7s %7s\n", "profile",
                "ops", "tasks", "cancelled", "ops/sec", "peak",
                "seeded", "racy");

    std::vector<ProfileResult> results;
    bool ok = true;
    for (const workload::AsyncProfile &p : workload::asyncProfiles()) {
        ProfileResult r = runProfile(p, scale, withMetrics);
        std::printf("%13s | %8llu %7llu %9llu %12.0f %10s %7llu "
                    "%7llu\n",
                    r.name.c_str(), (unsigned long long)r.ops,
                    (unsigned long long)r.tasks,
                    (unsigned long long)r.cancelled, r.opsPerSec,
                    humanBytes(r.peakBytes).c_str(),
                    (unsigned long long)r.seeded,
                    (unsigned long long)r.raceGroups);
        if (r.raceGroups != r.seeded) {
            std::fprintf(stderr,
                         "FAIL: %s reported %llu racy var(s), seeded "
                         "%llu\n",
                         r.name.c_str(),
                         (unsigned long long)r.raceGroups,
                         (unsigned long long)r.seeded);
            ok = false;
        }
        results.push_back(r);
    }
    if (!ok)
        return 1;
    std::printf("\nracy-variable counts match the seeded races on "
                "every profile\n");

    if (!jsonOut.empty()) {
        FILE *f = std::fopen(jsonOut.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n", jsonOut.c_str());
            return 1;
        }
        std::fprintf(f, "{\n  \"scale\": %.3f,\n  \"profiles\": {\n",
                     scale);
        for (std::size_t i = 0; i < results.size(); ++i) {
            const ProfileResult &r = results[i];
            std::fprintf(
                f,
                "    \"%s\": {\"ops\": %llu, \"tasks\": %llu, "
                "\"cancelled\": %llu, \"ops_per_sec\": %.0f, "
                "\"peak_bytes\": %llu, \"seeded_races\": %llu, "
                "\"racy_vars\": %llu}%s\n",
                r.name.c_str(), (unsigned long long)r.ops,
                (unsigned long long)r.tasks,
                (unsigned long long)r.cancelled, r.opsPerSec,
                (unsigned long long)r.peakBytes,
                (unsigned long long)r.seeded,
                (unsigned long long)r.raceGroups,
                i + 1 < results.size() ? "," : "");
        }
        std::fprintf(f, "  }\n}\n");
        std::fclose(f);
        std::printf("wrote %s\n", jsonOut.c_str());
    }

    if (withMetrics) {
        // One document, one complete metrics snapshot per profile
        // (the bench_streaming convention).
        JsonWriter w;
        w.beginObject();
        w.field("scale", scale);
        w.key("runs").beginObject();
        for (const ProfileResult &r : results)
            w.key(r.name).raw(r.metricsJson);
        w.endObject();
        w.endObject();
        std::FILE *f = std::fopen(metricsOut.c_str(), "wb");
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n",
                         metricsOut.c_str());
            return 1;
        }
        std::string doc = w.str();
        doc += "\n";
        if (std::fwrite(doc.data(), 1, doc.size(), f) != doc.size() ||
            std::fclose(f) != 0) {
            std::fprintf(stderr, "short write to %s\n",
                         metricsOut.c_str());
            return 1;
        }
        std::printf("wrote per-run metrics to %s\n",
                    metricsOut.c_str());
    }
    return 0;
}
